//! Persistence: reopening an IQ-tree from its three files.
//!
//! Everything a query needs is on disk: the flat directory encodes, per
//! page, the exact MBR, resolution, population and the positions of the
//! quantized block and exact region. [`IqTree::open`] reads the directory
//! file back and reconstructs the in-memory state, so an index built with
//! [`FileDevice`]s survives process restarts.
//!
//! [`FileDevice`]: iq_storage::FileDevice

use crate::{dir_entry_bytes, IqTree, IqTreeOptions, PageMeta};
use iq_cost::{DirectoryParams, RefineParams};
use iq_geometry::{Mbr, Metric};
use iq_quantize::{ExactPageCodec, QuantizedPageCodec};
use iq_storage::{BlockDevice, SimClock};

impl IqTree {
    /// Opens an IQ-tree whose three files already exist (e.g. created by a
    /// previous [`IqTree::build`] against [`FileDevice`]s).
    ///
    /// The directory file is read sequentially (charged to `clock`); the
    /// entry count is derived from the quantized file's length — every
    /// quantized page has exactly one directory entry. When
    /// `opts.cache_blocks` is set, each device is wrapped in a buffer pool
    /// exactly as [`IqTree::build`] would.
    ///
    /// # Panics
    /// Panics if the devices disagree on block size or the directory is
    /// inconsistent with the quantized file.
    ///
    /// [`FileDevice`]: iq_storage::FileDevice
    pub fn open(
        dim: usize,
        metric: Metric,
        opts: IqTreeOptions,
        dir: Box<dyn BlockDevice>,
        quant: Box<dyn BlockDevice>,
        exact: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        let dir = crate::maybe_cache(dir, opts.cache_blocks);
        let quant = crate::maybe_cache(quant, opts.cache_blocks);
        let exact = crate::maybe_cache(exact, opts.cache_blocks);
        assert!(
            dir.block_size() == quant.block_size() && quant.block_size() == exact.block_size(),
            "all three files must share one block size"
        );
        let n_pages = quant.num_blocks() as usize;
        let eb = dir_entry_bytes(dim);
        let dir_blocks = dir.num_blocks();
        assert!(
            dir_blocks as usize * dir.block_size() >= n_pages * eb,
            "directory file too short for {n_pages} pages"
        );
        let dir_bytes = if dir_blocks > 0 {
            dir.read_to_vec(clock, 0, dir_blocks)
        } else {
            Vec::new()
        };

        let mut pages = Vec::with_capacity(n_pages);
        let mut n = 0usize;
        for e in 0..n_pages {
            let off = e * eb;
            let entry = &dir_bytes[off..off + eb];
            let f32_at =
                |k: usize| f32::from_le_bytes(entry[4 * k..4 * k + 4].try_into().expect("4 bytes"));
            let lb: Vec<f32> = (0..dim).map(&f32_at).collect();
            let ub: Vec<f32> = (dim..2 * dim).map(&f32_at).collect();
            let tail = &entry[8 * dim..];
            let g = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes"));
            let count = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes"));
            let quant_block = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
            let exact_start = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
            let exact_blocks = u32::from_le_bytes(tail[24..28].try_into().expect("4 bytes"));
            assert!(
                (1..=32).contains(&g),
                "corrupt directory entry {e}: g = {g}"
            );
            n += count as usize;
            pages.push(PageMeta {
                mbr: Mbr::from_bounds(lb, ub),
                g,
                count,
                quant_block,
                exact_start,
                exact_blocks,
            });
        }

        let fractal = opts.fractal_dim.unwrap_or(dim as f64);
        let mut dir_params = DirectoryParams::new(metric, dim, fractal, n.max(1));
        dir_params.dir_entry_bytes = eb;
        Self {
            dim,
            metric,
            opts,
            codec: QuantizedPageCodec::new(dim, quant.block_size()),
            exact_codec: ExactPageCodec::new(dim),
            dir,
            quant,
            exact,
            pages,
            dir_bytes,
            n,
            refine_params: RefineParams::fractal(metric, dim, fractal, n.max(1)),
            dir_params,
            trace: Default::default(),
            wasted_exact_blocks: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::random_ds;
    use iq_storage::FileDevice;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iqtree-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn file_dev(dir: &std::path::Path, name: &str, create: bool) -> Box<dyn BlockDevice> {
        let path = dir.join(name);
        Box::new(if create {
            FileDevice::create(&path, 1024).expect("create")
        } else {
            FileDevice::open(&path, 1024).expect("open")
        })
    }

    #[test]
    fn build_close_reopen_query() {
        let dir = temp_dir("roundtrip");
        let ds = random_ds(2_000, 6, 91);
        let mut clock = SimClock::default();
        let names = ["dir.bin", "quant.bin", "exact.bin"];
        let mut name_iter = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, name_iter.next().expect("three devices"), true),
            &mut clock,
        );
        let q = vec![0.42f32; 6];
        let expect = tree.knn(&mut clock, &q, 5);
        let pages_before = tree.num_pages();
        drop(tree);

        // Reopen from disk and run the same query.
        let reopened = IqTree::open(
            6,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "dir.bin", false),
            file_dev(&dir, "quant.bin", false),
            file_dev(&dir, "exact.bin", false),
            &mut clock,
        );
        assert_eq!(reopened.len(), 2_000);
        assert_eq!(reopened.num_pages(), pages_before);
        let got = reopened.knn(&mut clock, &q, 5);
        assert_eq!(got, expect);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn reopened_tree_supports_updates() {
        let dir = temp_dir("updates");
        let ds = random_ds(800, 4, 92);
        let mut clock = SimClock::default();
        let names = ["d.bin", "q.bin", "e.bin"];
        let mut it = names.iter();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || file_dev(&dir, it.next().expect("three"), true),
            &mut clock,
        );
        drop(tree);
        let mut reopened = IqTree::open(
            4,
            Metric::Euclidean,
            IqTreeOptions::default(),
            file_dev(&dir, "d.bin", false),
            file_dev(&dir, "q.bin", false),
            file_dev(&dir, "e.bin", false),
            &mut clock,
        );
        let p = [0.9f32, 0.8, 0.7, 0.6];
        reopened.insert(&mut clock, 12_345, &p);
        assert_eq!(
            reopened.nearest(&mut clock, &p).expect("non-empty").0,
            12_345
        );
        assert!(reopened.delete(&mut clock, 12_345, &p));
        assert_eq!(reopened.len(), 800);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
