//! The IQ-tree: a compressed index for high-dimensional data spaces
//! (Berchtold, Böhm, Jagadish, Kriegel, Sander — ICDE 2000).
//!
//! Three levels in three files (Figure 3 of the paper):
//!
//! 1. a **flat directory** of exact MBRs, scanned sequentially at the start
//!    of every query,
//! 2. **quantized data pages** of one block each, holding the points of a
//!    partition as grid-cell numbers relative to the page MBR — with a
//!    resolution `g` (bits per dimension) chosen *per page* by a cost model
//!    (Independent Quantization), and
//! 3. **exact data pages** of variable size, consulted only when a query
//!    cannot be decided on an approximation ("refinement"). Pages quantized
//!    at 32 bits store exact coordinates directly and skip level 3.
//!
//! Nearest-neighbor search combines the Hjaltason/Samet best-first descent
//! with the paper's *time-optimized page access strategy* (Section 2.1):
//! around the pivot page, neighboring pages in disk order are loaded in the
//! same sweep whenever their access probability (Section 2.2) makes
//! over-reading cheaper than a probable later seek.

pub mod build;
pub mod durability;
pub mod maintain;
pub mod persist;
pub mod search;
pub mod update;
pub mod verify;

use build::{optimize_partitions, OptimizeTrace, SolutionPage};
pub use durability::RecoveryReport;
use iq_cost::{DirectoryParams, RefineParams};
use iq_geometry::{bulk_partition, Dataset, Mbr, Metric};
use iq_quantize::{ExactPageCodec, QuantizedPageCodec, EXACT_BITS};
use iq_storage::{read_to_vec_retry, BlockDevice, DeviceStack, IqResult, RetryPolicy, SimClock};
use iq_wal::{Level, WalRecord};

/// Construction and search options.
#[derive(Clone, Copy, Debug)]
pub struct IqTreeOptions {
    /// Use independent quantization (`false` stores every page exactly —
    /// the "no quantization" ablation of Figure 7).
    pub quantize: bool,
    /// Use the time-optimized page access strategy (`false` loads one page
    /// per random access — the "standard NN search" ablation of Figure 7).
    pub scheduled_io: bool,
    /// Correlation fractal dimension of the data for the cost model;
    /// `None` assumes uniformity (`D_F = d`). Estimate it with
    /// `iq_data::correlation_dimension_auto` for real data.
    pub fractal_dim: Option<f64>,
    /// Put an LRU buffer pool of this many block frames in front of each
    /// of the three level files ([`iq_cache::CachedDevice`]). `None` (the
    /// default) keeps the paper's cold-query cost model: every block
    /// access pays the disk.
    pub cache_blocks: Option<usize>,
    /// Retry budget for transient device faults on the read path. The
    /// default retries a few times with exponential backoff;
    /// [`RetryPolicy::none`] makes any fault surface immediately.
    pub retry: RetryPolicy,
    /// Threads for the CPU-bound page-encoding stage of construction
    /// (`0` = one per available core). Output bytes are identical for every
    /// value — parallelism changes build wall-clock, never the index.
    pub build_threads: usize,
}

impl Default for IqTreeOptions {
    fn default() -> Self {
        Self {
            quantize: true,
            scheduled_io: true,
            fractal_dim: None,
            cache_blocks: None,
            retry: RetryPolicy::default(),
            build_threads: 0,
        }
    }
}

/// Wraps a raw device in the stack every level file lives behind
/// ([`DeviceStack`]): per-block CRC32 checksumming verifying every read
/// (innermost, so cached frames always hold verified bytes), then an
/// optional buffer pool. Callers see the *logical* block size — the
/// physical one minus the checksum trailer. Transient-fault retries are
/// charged at the call sites via [`IqTreeOptions::retry`], not in the
/// stack, so the retry budget stays a per-tree query option.
///
/// When the global metrics registry is enabled at construction time
/// (`iq_obs::global().set_enabled(true)` *before* build/open), every stage
/// boundary additionally gets an [`iq_storage::ObservedDevice`] reporting
/// per-layer latency and traffic as `dev_<level>_raw_*` (below the
/// checksum), `dev_<level>_checksum_*` (verified reads) and
/// `dev_<level>_cache_*` (what the tree sees through the buffer pool).
/// With the registry disabled no observation layer is inserted at all, so
/// the hot path keeps its exact pre-observability shape.
fn wrap_device(
    dev: Box<dyn BlockDevice>,
    cache_blocks: Option<usize>,
    level: &str,
) -> Box<dyn BlockDevice> {
    let observed = iq_obs::global().enabled();
    let mut stack = DeviceStack::new(dev);
    if observed {
        stack = stack.observe(&format!("{level}_raw"));
    }
    stack = stack.checksum();
    if observed {
        stack = stack.observe(&format!("{level}_checksum"));
    }
    if let Some(frames) = cache_blocks {
        stack = stack.layer(|d| Box::new(iq_cache::CachedDevice::new(d, frames)));
        if observed {
            stack = stack.observe(&format!("{level}_cache"));
        }
    }
    stack.build()
}

/// Directory entry: everything the first level stores about one quantized
/// data page.
#[derive(Clone, Debug)]
pub struct PageMeta {
    /// Exact MBR of the page's points.
    pub mbr: Mbr,
    /// Quantization resolution in bits per dimension (32 = exact).
    pub g: u32,
    /// Number of points in the page.
    pub count: u32,
    /// Block index of the quantized page in the second-level file.
    pub quant_block: u64,
    /// Start block of the exact region in the third-level file
    /// (unused when `g == 32`).
    pub exact_start: u64,
    /// Length of the exact region in blocks (0 when `g == 32`).
    pub exact_blocks: u32,
}

/// The IQ-tree.
///
/// # Example
///
/// ```
/// use iq_geometry::{Dataset, Metric};
/// use iq_storage::{MemDevice, SimClock};
/// use iq_tree::{IqTree, IqTreeOptions};
///
/// // A toy 2-d data set.
/// let ds = Dataset::from_flat(2, (0..200).map(|i| i as f32 / 200.0).collect());
/// let mut clock = SimClock::default();
/// let mut tree = IqTree::build(
///     &ds,
///     Metric::Euclidean,
///     IqTreeOptions::default(),
///     || Box::new(MemDevice::new(512)),
///     &mut clock,
/// );
/// let (id, dist) = tree.nearest(&mut clock, &[0.33, 0.34]).unwrap();
/// assert!(dist < 0.1);
/// assert!((id as usize) < ds.len());
/// // Dynamic updates:
/// tree.insert(&mut clock, 999, &[0.5, 0.5]).unwrap();
/// assert_eq!(tree.nearest(&mut clock, &[0.5, 0.5]).unwrap().0, 999);
/// ```
pub struct IqTree {
    dim: usize,
    metric: Metric,
    opts: IqTreeOptions,
    codec: QuantizedPageCodec,
    exact_codec: ExactPageCodec,
    dir: Box<dyn BlockDevice>,
    quant: Box<dyn BlockDevice>,
    exact: Box<dyn BlockDevice>,
    pages: Vec<PageMeta>,
    /// Serialized image of the directory file (kept in sync with `pages`;
    /// updates rewrite only the touched blocks).
    dir_bytes: Vec<u8>,
    n: usize,
    refine_params: RefineParams,
    dir_params: DirectoryParams,
    trace: OptimizeTrace,
    /// Blocks orphaned in the exact file by updates (reclaimable by a
    /// rebuild or [`IqTree::checkpoint`]).
    wasted_exact_blocks: u64,
    /// Write-ahead log; when attached, every mutation stages, logs, syncs
    /// and only then applies (see [`durability`]).
    wal: Option<iq_wal::Wal>,
    /// The open transaction, if an update is staging writes.
    txn: Option<durability::Txn>,
    /// Superblock generation: bumped by every checkpoint and rebuild.
    generation: u64,
    /// Opened from an older on-disk format: reads fine, refuses mutations.
    read_only: bool,
    /// A durably committed transaction failed to apply to the base files;
    /// mutations are refused until a reopen replays the log.
    poisoned: bool,
}

// Queries take `&self`, so a tree behind an `Arc` (or borrowed into scoped
// threads, as `knn_batch` does) must be shareable. Guarded at compile time:
// a non-`Sync` field would break `knn_batch` and every concurrent caller.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<IqTree>();
};

/// Serialized directory entry size: MBR + (g, count) + page references.
pub(crate) fn dir_entry_bytes(dim: usize) -> usize {
    8 * dim + 4 + 4 + 8 + 8 + 4
}

impl IqTree {
    /// Bulk-loads an IQ-tree over `ds`.
    ///
    /// `make_dev` is called three times to create the directory, quantized
    /// and exact files (all three must share one block size).
    ///
    /// # Panics
    /// Panics if `ds` is empty or the devices disagree on block size.
    pub fn build(
        ds: &Dataset,
        metric: Metric,
        opts: IqTreeOptions,
        make_dev: impl FnMut() -> Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        Self::build_impl(ds, None, metric, opts, make_dev, clock)
    }

    /// Like [`IqTree::build`], but stores `ids[row]` as the identifier of
    /// dataset row `row` (used by [`IqTree::rebuild`] to preserve ids).
    ///
    /// # Panics
    /// Panics if `ids.len() != ds.len()`.
    pub fn build_with_ids(
        ds: &Dataset,
        ids: &[u32],
        metric: Metric,
        opts: IqTreeOptions,
        make_dev: impl FnMut() -> Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        assert_eq!(ids.len(), ds.len(), "one id per point");
        Self::build_impl(ds, Some(ids), metric, opts, make_dev, clock)
    }

    fn build_impl(
        ds: &Dataset,
        ids: Option<&[u32]>,
        metric: Metric,
        opts: IqTreeOptions,
        mut make_dev: impl FnMut() -> Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        assert!(!ds.is_empty(), "cannot build an IQ-tree over an empty set");
        let dim = ds.dim();
        let dir = wrap_device(make_dev(), opts.cache_blocks, "dir");
        let quant = wrap_device(make_dev(), opts.cache_blocks, "quant");
        let exact = wrap_device(make_dev(), opts.cache_blocks, "exact");
        assert!(
            dir.block_size() == quant.block_size() && quant.block_size() == exact.block_size(),
            "all three files must share one block size"
        );
        let codec = QuantizedPageCodec::new(dim, quant.block_size());
        let exact_codec = ExactPageCodec::new(dim);
        let fractal = opts.fractal_dim.unwrap_or(dim as f64);
        let refine_params = RefineParams::fractal(metric, dim, fractal, ds.len());
        let mut dir_params = DirectoryParams::new(metric, dim, fractal, ds.len());
        dir_params.dir_entry_bytes = dir_entry_bytes(dim);

        let initial = bulk_partition(ds, codec.capacity(1));
        let (solution, trace) = optimize_partitions(
            ds,
            &codec,
            &refine_params,
            &dir_params,
            clock.disk(),
            initial,
            opts.quantize,
        );

        let mut tree = Self {
            dim,
            metric,
            opts,
            codec,
            exact_codec,
            dir,
            quant,
            exact,
            pages: Vec::with_capacity(solution.len()),
            dir_bytes: Vec::new(),
            n: ds.len(),
            refine_params,
            dir_params,
            trace,
            wasted_exact_blocks: 0,
            wal: None,
            txn: None,
            generation: 0,
            read_only: false,
            poisoned: false,
        };
        tree.write_pages(ds, ids, solution, clock);
        tree.rewrite_directory(clock).expect("write directory");
        tree
    }

    fn write_pages(
        &mut self,
        ds: &Dataset,
        id_map: Option<&[u32]>,
        solution: Vec<SolutionPage>,
        clock: &mut SimClock,
    ) {
        // Encode all pages in parallel (pure CPU work), then append the
        // results to the level files strictly in page order — the device
        // images are byte-for-byte those of a sequential build.
        let encoded = build::encode_pages(
            ds,
            id_map,
            &solution,
            &self.codec,
            &self.exact_codec,
            self.opts.build_threads,
        );
        for (page, enc) in solution.into_iter().zip(encoded) {
            let quant_block = self
                .quant
                .append(clock, &enc.quant)
                .expect("append quantized page");
            let (exact_start, exact_blocks) = if page.g < EXACT_BITS {
                let start = self
                    .exact
                    .append(clock, &enc.exact)
                    .expect("append exact page");
                (
                    start,
                    enc.exact.len().div_ceil(self.exact.block_size()) as u32,
                )
            } else {
                (0, 0)
            };
            self.pages.push(PageMeta {
                mbr: page.mbr,
                g: page.g,
                count: page.ids.len() as u32,
                quant_block,
                exact_start,
                exact_blocks,
            });
        }
    }

    /// Serializes one directory entry into `out`.
    fn encode_dir_entry(&self, meta: &PageMeta, out: &mut Vec<u8>) {
        for i in 0..self.dim {
            out.extend_from_slice(&meta.mbr.lb(i).to_le_bytes());
        }
        for i in 0..self.dim {
            out.extend_from_slice(&meta.mbr.ub(i).to_le_bytes());
        }
        out.extend_from_slice(&meta.g.to_le_bytes());
        out.extend_from_slice(&meta.count.to_le_bytes());
        out.extend_from_slice(&meta.quant_block.to_le_bytes());
        out.extend_from_slice(&meta.exact_start.to_le_bytes());
        out.extend_from_slice(&meta.exact_blocks.to_le_bytes());
    }

    /// The current header state, serialized into logical block 0 of the
    /// directory file by [`Self::write_superblock`]. Level lengths come
    /// from [`Self::level_blocks`], so a superblock staged inside a
    /// transaction already describes the post-apply files.
    fn superblock(&self) -> persist::Superblock {
        persist::Superblock {
            version: persist::FORMAT_VERSION,
            block_size: self.dir.block_size() as u32,
            dim: self.dim as u32,
            metric: self.metric,
            n_pages: self.pages.len() as u64,
            n_points: self.n as u64,
            quant_blocks: self.level_blocks(Level::Quant),
            exact_blocks: self.level_blocks(Level::Exact),
            dir_crc: iq_storage::crc32(&self.dir_bytes),
            generation: self.generation,
        }
    }

    pub(crate) fn level_dev_mut(&mut self, level: Level) -> &mut dyn BlockDevice {
        match level {
            Level::Dir => self.dir.as_mut(),
            Level::Quant => self.quant.as_mut(),
            Level::Exact => self.exact.as_mut(),
        }
    }

    /// Length of a level file in logical blocks — the *virtual* length
    /// while a transaction is staging writes, the device length otherwise.
    pub(crate) fn level_blocks(&self, level: Level) -> u64 {
        if let Some(txn) = self.txn.as_ref() {
            return txn.len[level as usize];
        }
        match level {
            Level::Dir => self.dir.num_blocks(),
            Level::Quant => self.quant.num_blocks(),
            Level::Exact => self.exact.num_blocks(),
        }
    }

    /// Writes whole blocks at `block` — staged as a WAL record while a
    /// transaction is open, directly to the device otherwise.
    pub(crate) fn dev_write(
        &mut self,
        clock: &mut SimClock,
        level: Level,
        block: u64,
        data: &[u8],
    ) -> IqResult<()> {
        debug_assert_eq!(data.len() % self.block_size(), 0);
        if let Some(txn) = self.txn.as_mut() {
            txn.records.push(WalRecord::PageWrite {
                level,
                block,
                bytes: data.to_vec(),
            });
            Ok(())
        } else {
            self.level_dev_mut(level).write_blocks(clock, block, data)
        }
    }

    /// Appends to a level file, returning the start block — against the
    /// virtual length while a transaction is open.
    pub(crate) fn dev_append(
        &mut self,
        clock: &mut SimClock,
        level: Level,
        data: &[u8],
    ) -> IqResult<u64> {
        if let Some(txn) = self.txn.as_mut() {
            let bs = self.codec.block_size();
            let start = txn.len[level as usize];
            txn.len[level as usize] = start + data.len().div_ceil(bs) as u64;
            txn.records.push(WalRecord::PageAppend {
                level,
                block: start,
                bytes: data.to_vec(),
            });
            Ok(start)
        } else {
            self.level_dev_mut(level).append(clock, data)
        }
    }

    /// Truncates a level file to `nblocks`.
    pub(crate) fn dev_truncate(
        &mut self,
        clock: &mut SimClock,
        level: Level,
        nblocks: u64,
    ) -> IqResult<()> {
        if let Some(txn) = self.txn.as_mut() {
            txn.len[level as usize] = nblocks;
            txn.records
                .push(WalRecord::TruncateLevel { level, nblocks });
            Ok(())
        } else {
            self.level_dev_mut(level).truncate_blocks(clock, nblocks)
        }
    }

    /// Writes the superblock. Always called *after* the entry payload it
    /// describes, so a crash mid-update leaves a header that at worst
    /// fails its CRC check instead of one pointing at unwritten entries.
    fn write_superblock(&mut self, clock: &mut SimClock) -> IqResult<()> {
        let block = self.superblock().encode(self.dir.block_size());
        self.dev_write(clock, Level::Dir, 0, &block)
    }

    /// Rewrites the whole directory file (build time and bulk maintenance):
    /// entry payload in logical blocks 1.., then the superblock.
    fn rewrite_directory(&mut self, clock: &mut SimClock) -> IqResult<()> {
        let mut bytes = Vec::with_capacity(self.pages.len() * dir_entry_bytes(self.dim));
        let pages = std::mem::take(&mut self.pages);
        for meta in &pages {
            self.encode_dir_entry(meta, &mut bytes);
        }
        self.pages = pages;
        let bs = self.dir.block_size();
        bytes.resize(bytes.len().div_ceil(bs) * bs, 0);
        if self.level_blocks(Level::Dir) == 0 {
            // Fresh file: reserve block 0 for the superblock.
            self.dev_append(clock, Level::Dir, &vec![0u8; bs])?;
        }
        let have = (self.level_blocks(Level::Dir) as usize - 1) * bs;
        let split = have.min(bytes.len());
        if split > 0 {
            self.dev_write(clock, Level::Dir, 1, &bytes[..split])?;
        }
        if split < bytes.len() {
            self.dev_append(clock, Level::Dir, &bytes[split..])?;
        }
        self.dir_bytes = bytes;
        self.write_superblock(clock)
    }

    /// Updates the serialized directory for entry `idx`, writes the
    /// touched block(s) and refreshes the superblock (whose point count
    /// and payload CRC change with every patch).
    fn patch_dir_entry(&mut self, clock: &mut SimClock, idx: usize) -> IqResult<()> {
        let eb = dir_entry_bytes(self.dim);
        let bs = self.dir.block_size();
        let start_byte = idx * eb;
        if start_byte + eb > self.dir_bytes.len() {
            // Appending a brand-new entry: rewrite wholesale (rare).
            return self.rewrite_directory(clock);
        }
        let mut entry = Vec::with_capacity(eb);
        let meta = self.pages[idx].clone();
        self.encode_dir_entry(&meta, &mut entry);
        self.dir_bytes[start_byte..start_byte + eb].copy_from_slice(&entry);
        let first_block = start_byte / bs;
        let last_block = (start_byte + eb - 1) / bs;
        let lo = first_block * bs;
        let hi = ((last_block + 1) * bs).min(self.dir_bytes.len());
        let patch = self.dir_bytes[lo..hi].to_vec();
        // Entry payload starts at logical block 1.
        self.dev_write(clock, Level::Dir, first_block as u64 + 1, &patch)?;
        self.write_superblock(clock)
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The metric queries use.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the tree is empty (possible after deletions).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of quantized data pages.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// The directory entries (read-only view).
    pub fn pages(&self) -> &[PageMeta] {
        &self.pages
    }

    /// The optimizer's cost trace from construction.
    pub fn optimize_trace(&self) -> &OptimizeTrace {
        &self.trace
    }

    /// Histogram of quantization resolutions: `(g, number of pages)`.
    pub fn bits_histogram(&self) -> Vec<(u32, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        for p in &self.pages {
            *counts.entry(p.g).or_insert(0usize) += 1;
        }
        counts.into_iter().collect()
    }

    /// The cost model's estimate of the average NN query cost for the
    /// *current* page configuration (eq 23 over live pages) — the quantity
    /// the optimizer minimized at build time, re-evaluated after updates.
    /// Comparing it with the build-time optimum tells maintenance when a
    /// [`IqTree::rebuild`] is worthwhile.
    pub fn estimated_query_cost(&self, disk: &iq_storage::DiskModel) -> f64 {
        let live = self.pages.iter().filter(|p| p.count > 0);
        let mut total_var = 0.0;
        let mut n_pages = 0usize;
        for meta in live {
            let sides: Vec<f32> = (0..self.dim).map(|i| meta.mbr.extent(i) as f32).collect();
            total_var += iq_cost::refinement_cost(
                &self.refine_params,
                disk,
                &sides,
                meta.count as usize,
                meta.g,
            );
            n_pages += 1;
        }
        iq_cost::directory::total_cost(&self.dir_params, disk, n_pages, total_var)
    }

    /// Exact-file blocks orphaned by dynamic updates.
    pub fn wasted_exact_blocks(&self) -> u64 {
        self.wasted_exact_blocks
    }

    /// Storage footprint of the three levels, in blocks:
    /// `(directory, quantized, exact)`.
    pub fn storage_blocks(&self) -> (u64, u64, u64) {
        (
            self.dir.num_blocks(),
            self.quant.num_blocks(),
            self.exact.num_blocks(),
        )
    }

    /// Size of the quantized (second) level relative to storing all points
    /// exactly — the compression the independent quantization achieves on
    /// the level every query scans.
    pub fn compression_ratio(&self) -> f64 {
        let quant_bytes = self.quant.num_blocks() as f64 * self.block_size() as f64;
        let exact_bytes = (self.n * 4 * self.dim) as f64;
        if exact_bytes == 0.0 {
            return 1.0;
        }
        quant_bytes / exact_bytes
    }

    pub(crate) fn options(&self) -> &IqTreeOptions {
        &self.opts
    }

    pub(crate) fn codec(&self) -> &QuantizedPageCodec {
        &self.codec
    }

    pub(crate) fn exact_codec(&self) -> &ExactPageCodec {
        &self.exact_codec
    }

    pub(crate) fn refine_params(&self) -> &RefineParams {
        &self.refine_params
    }

    pub(crate) fn dir_params(&self) -> &DirectoryParams {
        &self.dir_params
    }

    pub(crate) fn retry(&self) -> &RetryPolicy {
        &self.opts.retry
    }

    pub(crate) fn quant_dev(&self) -> &dyn BlockDevice {
        self.quant.as_ref()
    }

    pub(crate) fn exact_dev(&self) -> &dyn BlockDevice {
        self.exact.as_ref()
    }

    pub(crate) fn block_size(&self) -> usize {
        self.codec.block_size()
    }

    pub(crate) fn set_page_meta(&mut self, idx: usize, meta: PageMeta) {
        self.pages[idx] = meta;
    }

    pub(crate) fn push_page_meta(&mut self, meta: PageMeta) {
        self.pages.push(meta);
    }

    pub(crate) fn bump_len(&mut self, delta: i64) {
        self.n = (self.n as i64 + delta) as usize;
    }

    pub(crate) fn waste_exact(&mut self, blocks: u64) {
        self.wasted_exact_blocks += blocks;
        iq_obs::global()
            .gauge("wasted_exact_blocks")
            .set(self.wasted_exact_blocks as f64);
    }

    /// Charges the first-level directory scan (every query starts with it)
    /// and the per-entry MINDIST computations.
    pub(crate) fn charge_directory_scan(&self, clock: &mut SimClock) {
        let nblocks = self.dir.num_blocks();
        if nblocks > 0 {
            // One sequential sweep. The in-memory directory is
            // authoritative after open, so a corrupt block here only
            // surfaces in the clock's corruption statistics.
            let _ = read_to_vec_retry(self.dir.as_ref(), clock, 0, nblocks, &self.opts.retry);
        }
        clock.charge_dist_evals(self.dim, self.pages.len() as u64);
    }

    /// Reads and decodes the exact coordinates of the point at `slot`
    /// within page `page_idx` (a refinement: random access into the
    /// third-level file, retried on transient faults).
    pub(crate) fn try_read_exact_point(
        &self,
        clock: &mut SimClock,
        page_idx: usize,
        slot: usize,
    ) -> IqResult<Vec<f32>> {
        let meta = &self.pages[page_idx];
        debug_assert!(meta.g < EXACT_BITS, "exact pages are never refined");
        let bs = self.exact.block_size();
        let (first, nblocks, off) = self.exact_codec.entry_span(slot, bs);
        let buf = read_to_vec_retry(
            self.exact.as_ref(),
            clock,
            meta.exact_start + first,
            nblocks,
            &self.opts.retry,
        )?;
        let (_, coords) = self
            .exact_codec
            .try_decode_entry_at(&buf[off..off + self.exact_codec.entry_bytes()])?;
        Ok(coords)
    }

    /// Reads the full exact region of a page, retried on transient faults.
    pub(crate) fn try_read_exact_region(
        &self,
        clock: &mut SimClock,
        page_idx: usize,
    ) -> IqResult<Vec<u8>> {
        let meta = &self.pages[page_idx];
        read_to_vec_retry(
            self.exact.as_ref(),
            clock,
            meta.exact_start,
            u64::from(meta.exact_blocks),
            &self.opts.retry,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::{CpuModel, DiskModel, MemDevice};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    pub(crate) fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        ds
    }

    pub(crate) fn build_tree(ds: &Dataset, opts: IqTreeOptions, bs: usize) -> (IqTree, SimClock) {
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let tree = IqTree::build(
            ds,
            Metric::Euclidean,
            opts,
            || Box::new(MemDevice::new(bs)),
            &mut clock,
        );
        clock.reset();
        (tree, clock)
    }

    #[test]
    fn build_covers_all_points() {
        let ds = random_ds(2_000, 8, 1);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 1024);
        assert_eq!(tree.len(), 2_000);
        let total: u32 = tree.pages().iter().map(|p| p.count).sum();
        assert_eq!(total as usize, 2_000);
        assert!(tree.num_pages() > 1);
    }

    #[test]
    fn quantized_build_uses_multiple_resolutions_on_skew() {
        let mut ds = random_ds(1_500, 4, 2);
        // Add a dense blob.
        let mut rng = StdRng::seed_from_u64(5);
        let mut row = [0.0f32; 4];
        for _ in 0..1_500 {
            row.fill_with(|| 0.5 + rng.gen::<f32>() * 0.01);
            ds.push(&row);
        }
        // Physical 516-byte blocks leave a 512-byte logical payload after
        // the 4-byte per-block checksum, which is what the skew of this
        // data set needs to make the optimizer mix resolutions.
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 516);
        assert!(
            tree.bits_histogram().len() >= 2,
            "{:?}",
            tree.bits_histogram()
        );
    }

    #[test]
    fn no_quantization_means_exact_pages_only() {
        let ds = random_ds(800, 6, 3);
        let opts = IqTreeOptions {
            quantize: false,
            ..Default::default()
        };
        let (tree, _) = build_tree(&ds, opts, 1024);
        assert!(tree.pages().iter().all(|p| p.g == EXACT_BITS));
        assert!(tree.pages().iter().all(|p| p.exact_blocks == 0));
    }

    #[test]
    fn exact_pages_skip_third_level() {
        let ds = random_ds(500, 4, 4);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 512);
        for p in tree.pages() {
            if p.g == EXACT_BITS {
                assert_eq!(p.exact_blocks, 0);
            } else {
                assert!(p.exact_blocks > 0);
            }
        }
    }

    #[test]
    fn directory_file_matches_entry_count() {
        let ds = random_ds(1_000, 5, 5);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 512);
        let expect_bytes = tree.num_pages() * dir_entry_bytes(5);
        // Logical block size (the checksum layer keeps 4 bytes per block);
        // one extra block holds the superblock.
        let bs = tree.block_size();
        assert_eq!(tree.dir.num_blocks(), 1 + expect_bytes.div_ceil(bs) as u64);
    }

    #[test]
    fn estimated_cost_matches_optimizer_choice_at_build() {
        let ds = random_ds(5_000, 8, 8);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 8192);
        let est = tree.estimated_query_cost(&iq_storage::DiskModel::default());
        let opt = tree.optimize_trace().cost_per_step[tree.optimize_trace().best_step];
        // Same model, same configuration: must agree closely (the optimizer
        // prices tentative splits from the same formulas).
        assert!(
            (est - opt).abs() / opt < 0.05,
            "est {est} vs optimizer {opt}"
        );
    }

    #[test]
    fn estimated_cost_degrades_with_skewed_inserts() {
        let ds = random_ds(3_000, 6, 9);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 4096);
        let disk = iq_storage::DiskModel::default();
        let before = tree.estimated_query_cost(&disk);
        // Pile inserts into one corner: pages there overflow and coarsen /
        // split suboptimally relative to a global re-optimization.
        let mut rng = StdRng::seed_from_u64(10);
        for i in 0..3_000u32 {
            let p: Vec<f32> = (0..6).map(|_| rng.gen::<f32>() * 0.05).collect();
            tree.insert(&mut clock, 3_000 + i, &p).unwrap();
        }
        let degraded = tree.estimated_query_cost(&disk);
        assert!(degraded > before, "{degraded} vs {before}");
        // A rebuild improves the modeled cost (or at least never hurts).
        tree.rebuild(&mut clock, || Box::new(MemDevice::new(4096)))
            .unwrap();
        let rebuilt = tree.estimated_query_cost(&disk);
        assert!(rebuilt <= degraded * 1.001, "{rebuilt} vs {degraded}");
    }

    #[test]
    fn storage_summary_is_consistent() {
        let ds = random_ds(3_000, 16, 7);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 8192);
        let (dir, quant, exact) = tree.storage_blocks();
        assert_eq!(quant as usize, tree.num_pages());
        assert!(dir >= 1);
        // Pages below 32 bits have exact backing.
        let needs_exact = tree.pages().iter().any(|p| p.g < 32);
        assert_eq!(exact > 0, needs_exact);
        // The scanned level is compressed.
        assert!(
            tree.compression_ratio() < 1.0,
            "{}",
            tree.compression_ratio()
        );
    }

    #[test]
    fn quant_pages_are_consecutive_blocks() {
        let ds = random_ds(1_200, 6, 6);
        let (tree, _) = build_tree(&ds, IqTreeOptions::default(), 512);
        for (i, p) in tree.pages().iter().enumerate() {
            assert_eq!(p.quant_block, i as u64, "pages must be laid out in order");
        }
    }
}
