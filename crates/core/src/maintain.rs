//! Bulk maintenance: re-optimization after updates (Section 6).
//!
//! Dynamic updates degrade the structure over time: exact regions orphaned
//! by relocations waste disk, page resolutions drift away from the cost
//! optimum ("when an update modifies the variable cost for a page, it may
//! turn out to be preferable to undo the split for this page, and to split
//! a different page instead"). [`IqTree::rebuild`] restores the global
//! optimum: it extracts all points, reruns the full construction pipeline
//! (initial partitioning + optimal quantization) and swaps in fresh files.

use crate::{IqTree, IqTreeOptions};
use iq_geometry::Dataset;
use iq_quantize::EXACT_BITS;
use iq_storage::{BlockDevice, IqError, IqResult, SimClock};

impl IqTree {
    /// Extracts every `(id, point)` currently stored, in page order.
    ///
    /// Reads the whole second level sequentially plus the exact regions of
    /// non-exact pages (all charged to the clock). Unreadable or
    /// undecodable blocks surface as typed errors.
    pub fn export_points(&self, clock: &mut SimClock) -> IqResult<(Vec<u32>, Dataset)> {
        let dim = self.dim();
        let mut ids = Vec::with_capacity(self.len());
        let mut points = Dataset::with_capacity(dim, self.len());
        for idx in 0..self.pages().len() {
            let meta = self.pages()[idx].clone();
            if meta.count == 0 {
                continue;
            }
            let block = meta.quant_block;
            let bytes =
                iq_storage::read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry())?;
            let decoded = self.codec().try_decode(&bytes)?;
            if decoded.bits() == EXACT_BITS {
                for i in 0..decoded.len() {
                    ids.push(decoded.id(i));
                    points.push(&decoded.exact_point(i).ok_or_else(|| IqError::Decode {
                        detail: format!("page {idx}: exact-bits point {i} missing"),
                    })?);
                }
            } else {
                let region = self.try_read_exact_region(clock, idx)?;
                let eb = self.exact_codec().entry_bytes();
                for i in 0..decoded.len() {
                    let span = region
                        .get(i * eb..(i + 1) * eb)
                        .ok_or_else(|| IqError::Decode {
                            detail: format!("exact region of page {idx} too short for entry {i}"),
                        })?;
                    let (id, coords) = self.exact_codec().try_decode_entry_at(span)?;
                    debug_assert_eq!(id, decoded.id(i), "levels 2 and 3 agree on ids");
                    ids.push(decoded.id(i));
                    points.push(&coords);
                }
            }
        }
        Ok((ids, points))
    }

    /// Rebuilds the tree from its current contents: re-partitions,
    /// re-optimizes the quantization, writes fresh files (reclaiming all
    /// orphaned blocks) and replaces `self`.
    ///
    /// `make_dev` provides the three replacement devices, exactly as in
    /// [`IqTree::build`]. Stored point ids are preserved, as is an
    /// attached WAL: the rebuilt files supersede everything the log
    /// recorded, so the log is emptied and re-attached with the
    /// generation bumped.
    ///
    /// # Panics
    /// Panics if the tree is empty.
    pub fn rebuild(
        &mut self,
        clock: &mut SimClock,
        make_dev: impl FnMut() -> Box<dyn BlockDevice>,
    ) -> IqResult<()> {
        assert!(!self.is_empty(), "cannot rebuild an empty tree");
        self.ensure_writable()?;
        let (ids, points) = self.export_points(clock)?;
        let opts: IqTreeOptions = *self.options();
        let mut fresh = IqTree::build_with_ids(&points, &ids, self.metric(), opts, make_dev, clock);
        // The fresh files are a complete checkpoint of the data: start a
        // new generation and an empty log.
        fresh.generation = self.generation + 1;
        fresh.write_superblock(clock)?;
        if let Some(mut wal) = self.wal.take() {
            wal.reset(clock)?;
            fresh.wal = Some(wal);
        }
        *self = fresh;
        iq_obs::global().gauge("wasted_exact_blocks").set(0.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::{build_tree, random_ds};
    use crate::IqTreeOptions;
    use iq_storage::MemDevice;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn export_returns_every_point_once() {
        let ds = random_ds(1_500, 5, 81);
        let (tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        let (ids, points) = tree.export_points(&mut clock).unwrap();
        assert_eq!(ids.len(), 1_500);
        assert_eq!(points.len(), 1_500);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1_500, "ids must be unique");
        // Every exported point matches the original (exact pages are
        // bit-exact; refined pages come from the exact file).
        for (&id, p) in ids.iter().zip(points.iter()) {
            assert_eq!(p, ds.point(id as usize), "id {id}");
        }
    }

    #[test]
    fn rebuild_reclaims_waste_and_preserves_answers() {
        let ds = random_ds(2_000, 4, 82);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 1024);
        // Degrade with updates.
        let mut rng = StdRng::seed_from_u64(83);
        let mut extra = Vec::new();
        for i in 0..500u32 {
            let p: Vec<f32> = (0..4).map(|_| rng.gen()).collect();
            tree.insert(&mut clock, 2_000 + i, &p).unwrap();
            extra.push(p);
        }
        for i in 0..200u32 {
            assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
        }
        let wasted_before = tree.wasted_exact_blocks();
        let before: Vec<_> = (0..5)
            .map(|i| tree.nearest(&mut clock, &extra[i]).expect("non-empty"))
            .collect();

        tree.rebuild(&mut clock, || Box::new(MemDevice::new(1024)))
            .unwrap();

        assert_eq!(tree.len(), 2_300);
        assert_eq!(tree.wasted_exact_blocks(), 0);
        let _ = wasted_before; // may be zero if no region moved, that's fine
        for (i, b) in before.iter().enumerate() {
            let a = tree.nearest(&mut clock, &extra[i]).expect("non-empty");
            assert_eq!(a.0, b.0, "query {i}");
            assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn rebuild_preserves_original_ids() {
        let ds = random_ds(800, 3, 84);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        tree.rebuild(&mut clock, || Box::new(MemDevice::new(512)))
            .unwrap();
        for i in (0..800).step_by(97) {
            let (id, d) = tree.nearest(&mut clock, ds.point(i)).expect("non-empty");
            assert_eq!(id as usize, i);
            assert!(d < 1e-9);
        }
    }
}
