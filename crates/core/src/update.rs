//! Dynamic maintenance: inserts and deletes (Section 6 of the paper).
//!
//! Inserts descend the flat directory by least volume enlargement. On a
//! quantized-page overflow the paper's question — "whether to split the
//! page or to quantize it at coarser granularity" — is decided by the cost
//! model: the variable (refinement) cost of the coarsened page is compared
//! with that of the two split halves plus the constant cost of one more
//! partition, and the cheaper alternative wins.
//!
//! Exact regions are relocated (appended) when they grow; the blocks they
//! leave behind are tracked in [`IqTree::wasted_exact_blocks`] and
//! reclaimed by a rebuild or a [`IqTree::checkpoint`].
//!
//! With a WAL attached every mutation is one transaction: page loads
//! happen first, the new page images are staged, logged with a commit
//! frame and synced, and only then written to the level files (see
//! [`crate::durability`]). Without a WAL the writes go straight to the
//! devices — the pre-WAL behavior, durable only between operations.

use crate::{IqTree, PageMeta};
use iq_cost::directory;
use iq_geometry::Mbr;
use iq_quantize::EXACT_BITS;
use iq_storage::{IqError, IqResult, SimClock};
use iq_wal::{Level, WalRecord};

/// A fully materialized page during an update: ids plus exact coordinates.
struct LoadedPage {
    ids: Vec<u32>,
    coords: Vec<f32>, // len × dim
}

impl LoadedPage {
    fn point(&self, i: usize, dim: usize) -> &[f32] {
        &self.coords[i * dim..(i + 1) * dim]
    }

    fn mbr(&self, dim: usize) -> Mbr {
        Mbr::of_points(dim, self.coords.chunks_exact(dim))
    }
}

impl IqTree {
    /// Loads ids and exact coordinates of every point in a page.
    ///
    /// Any unreadable or undecodable block surfaces as a typed error; the
    /// calling operation aborts without having touched the files.
    fn load_page(&self, clock: &mut SimClock, idx: usize) -> IqResult<LoadedPage> {
        let meta = self.pages()[idx].clone();
        let block = meta.quant_block;
        let bytes = iq_storage::read_to_vec_retry(self.quant_dev(), clock, block, 1, self.retry())?;
        let decoded = self.codec().try_decode(&bytes)?;
        let ids: Vec<u32> = (0..decoded.len()).map(|i| decoded.id(i)).collect();
        let coords: Vec<f32> = if decoded.bits() == EXACT_BITS {
            let mut coords = Vec::with_capacity(decoded.len() * self.dim());
            for i in 0..decoded.len() {
                coords.extend(decoded.exact_point(i).ok_or_else(|| IqError::Decode {
                    detail: format!(
                        "page {idx} claims {} exact bits but point {i} has none",
                        EXACT_BITS
                    ),
                })?);
            }
            coords
        } else {
            let region = self.try_read_exact_region(clock, idx)?;
            let codec = *self.exact_codec();
            let eb = codec.entry_bytes();
            let mut coords = Vec::with_capacity(decoded.len() * self.dim());
            for i in 0..decoded.len() {
                let span = region
                    .get(i * eb..(i + 1) * eb)
                    .ok_or_else(|| IqError::Decode {
                        detail: format!(
                            "exact region of page {idx} holds {} byte(s), entry {i} needs {}",
                            region.len(),
                            (i + 1) * eb
                        ),
                    })?;
                let (_, pt) = codec.try_decode_entry_at(span)?;
                coords.extend(pt);
            }
            coords
        };
        Ok(LoadedPage { ids, coords })
    }

    /// Writes a page's quantized block (in place) and exact region
    /// (appended when it grows or moves), updating the directory entry.
    fn store_page(
        &mut self,
        clock: &mut SimClock,
        idx: usize,
        page: &LoadedPage,
        g: u32,
    ) -> IqResult<()> {
        let dim = self.dim();
        let mbr = page.mbr(dim);
        let quant_bytes = {
            let codec = *self.codec();
            codec.encode(
                &mbr,
                g,
                page.ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, page.point(i, dim))),
            )
        };
        let old = self.pages()[idx].clone();
        let quant_block = old.quant_block;
        self.dev_write(clock, Level::Quant, quant_block, &quant_bytes)?;

        let (exact_start, exact_blocks) = if g < EXACT_BITS {
            let bytes = {
                let codec = *self.exact_codec();
                codec.encode(
                    page.ids
                        .iter()
                        .enumerate()
                        .map(|(i, &id)| (id, page.point(i, dim))),
                )
            };
            let nblocks = bytes.len().div_ceil(self.block_size()) as u32;
            if nblocks == old.exact_blocks && old.g < EXACT_BITS {
                // Same footprint: overwrite in place.
                let mut padded = bytes;
                padded.resize(nblocks as usize * self.block_size(), 0);
                let start = old.exact_start;
                self.dev_write(clock, Level::Exact, start, &padded)?;
                (start, nblocks)
            } else {
                self.waste_exact(u64::from(old.exact_blocks));
                let start = self.dev_append(clock, Level::Exact, &bytes)?;
                (start, nblocks)
            }
        } else {
            self.waste_exact(u64::from(old.exact_blocks));
            (0, 0)
        };

        self.set_page_meta(
            idx,
            PageMeta {
                mbr,
                g,
                count: page.ids.len() as u32,
                quant_block,
                exact_start,
                exact_blocks,
            },
        );
        self.patch_dir_entry(clock, idx)
    }

    /// Appends a brand-new page (quantized block + exact region + directory
    /// entry).
    fn append_page(&mut self, clock: &mut SimClock, page: &LoadedPage, g: u32) -> IqResult<()> {
        let dim = self.dim();
        let mbr = page.mbr(dim);
        let quant_bytes = {
            let codec = *self.codec();
            codec.encode(
                &mbr,
                g,
                page.ids
                    .iter()
                    .enumerate()
                    .map(|(i, &id)| (id, page.point(i, dim))),
            )
        };
        let quant_block = self.dev_append(clock, Level::Quant, &quant_bytes)?;
        let (exact_start, exact_blocks) = if g < EXACT_BITS {
            let bytes = {
                let codec = *self.exact_codec();
                codec.encode(
                    page.ids
                        .iter()
                        .enumerate()
                        .map(|(i, &id)| (id, page.point(i, dim))),
                )
            };
            let nblocks = bytes.len().div_ceil(self.block_size()) as u32;
            let start = self.dev_append(clock, Level::Exact, &bytes)?;
            (start, nblocks)
        } else {
            (0, 0)
        };
        self.push_page_meta(PageMeta {
            mbr,
            g,
            count: page.ids.len() as u32,
            quant_block,
            exact_start,
            exact_blocks,
        });
        let idx = self.pages().len() - 1;
        self.patch_dir_entry(clock, idx)
    }

    /// Inserts a point with the given id.
    ///
    /// With a WAL attached the insert is atomic: it is either durably
    /// applied or (on any error) has no effect at all. Without one, an
    /// error can leave the on-disk files mid-operation.
    ///
    /// # Panics
    /// Panics if the tree is empty (build it with at least one point) or
    /// the dimensionality mismatches.
    pub fn insert(&mut self, clock: &mut SimClock, id: u32, p: &[f32]) -> IqResult<()> {
        assert_eq!(p.len(), self.dim(), "point dimensionality mismatch");
        assert!(!self.pages().is_empty(), "insert requires a built tree");
        self.ensure_writable()?;
        self.begin_txn(WalRecord::Insert {
            id: u64::from(id),
            point: p.iter().map(|&c| f64::from(c)).collect(),
        });
        match self.insert_inner(clock, id, p) {
            Ok(()) => self.commit_txn(clock),
            Err(e) => {
                self.abort_txn();
                Err(e)
            }
        }
    }

    fn insert_inner(&mut self, clock: &mut SimClock, id: u32, p: &[f32]) -> IqResult<()> {
        // Choose the non-empty page whose MBR needs least enlargement
        // (cleared pages keep a stale MBR and must never be chosen).
        let idx = self
            .pages()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.count > 0)
            .min_by(|(_, a), (_, b)| {
                let ea = a.mbr.enlargement_for_point(p);
                let eb = b.mbr.enlargement_for_point(p);
                ea.partial_cmp(&eb)
                    .expect("no NaN")
                    .then_with(|| a.mbr.volume().partial_cmp(&b.mbr.volume()).expect("no NaN"))
            })
            .map(|(i, _)| i);
        clock.charge_dist_evals(self.dim(), self.pages().len() as u64);
        // All pages cleared (tree emptied by deletes): revive the first
        // page slot with a fresh single-point page.
        let Some(idx) = idx else {
            let page = LoadedPage {
                ids: vec![id],
                coords: p.to_vec(),
            };
            self.store_page(clock, 0, &page, iq_quantize::EXACT_BITS.min(32))?;
            self.bump_len(1);
            return Ok(());
        };

        let mut page = self.load_page(clock, idx)?;
        page.ids.push(id);
        page.coords.extend_from_slice(p);
        self.bump_len(1);

        let g = self.pages()[idx].g;
        if page.ids.len() <= self.codec().capacity(g) {
            // Fits at the current resolution: re-encode (the MBR and hence
            // the grid may have grown).
            return self.store_page(clock, idx, &page, g);
        }

        // Overflow: split or coarsen, whichever the model prefers
        // (Section 6).
        let dim = self.dim();
        let disk = *clock.disk();
        let refine = *self.refine_params();
        let dirp = *self.dir_params();
        let n_pages = self.pages().len();
        let sides_of = |mbr: &Mbr| -> Vec<f32> { (0..dim).map(|i| mbr.extent(i) as f32).collect() };

        let coarse_g = self.codec().max_bits_for(page.ids.len());
        let coarsen_cost = coarse_g.map(|cg| {
            iq_cost::refinement_cost(
                &refine,
                &disk,
                &sides_of(&page.mbr(dim)),
                page.ids.len(),
                cg,
            )
        });

        // Tentative median split.
        let mbr = page.mbr(dim);
        let axis = mbr.longest_dim();
        let mut order: Vec<usize> = (0..page.ids.len()).collect();
        order.sort_by(|&a, &b| {
            page.point(a, dim)[axis]
                .partial_cmp(&page.point(b, dim)[axis])
                .expect("no NaN")
        });
        let mid = order.len() / 2;
        let take = |idxs: &[usize]| -> LoadedPage {
            LoadedPage {
                ids: idxs.iter().map(|&i| page.ids[i]).collect(),
                coords: idxs
                    .iter()
                    .flat_map(|&i| page.point(i, dim).iter().copied())
                    .collect(),
            }
        };
        let left = take(&order[..mid]);
        let right = take(&order[mid..]);
        let lg = self
            .codec()
            .max_bits_for(left.ids.len())
            .expect("half fits");
        let rg = self
            .codec()
            .max_bits_for(right.ids.len())
            .expect("half fits");
        let split_cost = iq_cost::refinement_cost(
            &refine,
            &disk,
            &sides_of(&left.mbr(dim)),
            left.ids.len(),
            lg,
        ) + iq_cost::refinement_cost(
            &refine,
            &disk,
            &sides_of(&right.mbr(dim)),
            right.ids.len(),
            rg,
        ) + (directory::constant_cost(&dirp, &disk, n_pages + 1)
            - directory::constant_cost(&dirp, &disk, n_pages));

        match coarsen_cost {
            Some(cc) if cc <= split_cost => {
                let cg = coarse_g.expect("some");
                self.note_record(WalRecord::Requantize {
                    page: idx as u64,
                    g: cg,
                });
                self.store_page(clock, idx, &page, cg)
            }
            _ => {
                self.note_record(WalRecord::Split {
                    page: idx as u64,
                    new_page: self.pages().len() as u64,
                });
                self.store_page(clock, idx, &left, lg)?;
                self.append_page(clock, &right, rg)
            }
        }
    }

    /// Deletes the point `id` located at `p`. Returns `true` if it was
    /// found and removed.
    ///
    /// A page left under a quarter of its 1-bit capacity is merged into the
    /// neighboring page whose MBR needs least enlargement, when the
    /// combined population still fits a page and the cost model prefers the
    /// merged configuration (the paper's "undo the split" maintenance,
    /// Section 6).
    ///
    /// With a WAL attached the delete is atomic (all-or-nothing), like
    /// [`IqTree::insert`].
    pub fn delete(&mut self, clock: &mut SimClock, id: u32, p: &[f32]) -> IqResult<bool> {
        assert_eq!(p.len(), self.dim(), "point dimensionality mismatch");
        self.ensure_writable()?;
        let candidates: Vec<usize> = self
            .pages()
            .iter()
            .enumerate()
            .filter(|(_, m)| m.count > 0 && m.mbr.contains_point(p))
            .map(|(i, _)| i)
            .collect();
        clock.charge_dist_evals(self.dim(), self.pages().len() as u64);
        // Find phase: reads only, no transaction yet (a not-found delete
        // must not log anything).
        let mut found = None;
        for idx in candidates {
            let page = self.load_page(clock, idx)?;
            if let Some(pos) = page.ids.iter().position(|&x| x == id) {
                found = Some((idx, page, pos));
                break;
            }
        }
        let Some((idx, page, pos)) = found else {
            return Ok(false);
        };
        self.begin_txn(WalRecord::Delete {
            id: u64::from(id),
            point: p.iter().map(|&c| f64::from(c)).collect(),
        });
        match self.delete_found(clock, idx, page, pos) {
            Ok(()) => {
                self.commit_txn(clock)?;
                Ok(true)
            }
            Err(e) => {
                self.abort_txn();
                Err(e)
            }
        }
    }

    fn delete_found(
        &mut self,
        clock: &mut SimClock,
        idx: usize,
        mut page: LoadedPage,
        pos: usize,
    ) -> IqResult<()> {
        page.ids.remove(pos);
        let dim = self.dim();
        page.coords.drain(pos * dim..(pos + 1) * dim);
        self.bump_len(-1);
        if page.ids.is_empty() {
            self.clear_page(clock, idx)
        } else if self.try_merge_underflow(clock, idx, &page)? {
            Ok(())
        } else {
            // The freed capacity may admit a finer resolution.
            let g = self
                .codec()
                .max_bits_for(page.ids.len())
                .expect("fewer points always fit");
            let g = g.max(self.pages()[idx].g); // never coarsen on delete
            if g != self.pages()[idx].g {
                self.note_record(WalRecord::Requantize {
                    page: idx as u64,
                    g,
                });
            }
            self.store_page(clock, idx, &page, g)
        }
    }

    /// Attempts to merge an underflowing page into its best neighbor.
    /// Returns `Ok(true)` if the merge happened (the caller must not store
    /// the page again).
    fn try_merge_underflow(
        &mut self,
        clock: &mut SimClock,
        idx: usize,
        page: &LoadedPage,
    ) -> IqResult<bool> {
        let underflow = self.codec().capacity(1) / 4;
        if page.ids.len() >= underflow.max(1) {
            return Ok(false);
        }
        let dim = self.dim();
        let my_mbr = page.mbr(dim);
        // Best partner: least enlargement of the union MBR, combined
        // population must fit a 1-bit page.
        let partner = self
            .pages()
            .iter()
            .enumerate()
            .filter(|&(j, m)| {
                j != idx
                    && m.count > 0
                    && (m.count as usize + page.ids.len()) <= self.codec().capacity(1)
            })
            .min_by(|(_, a), (_, b)| {
                let grow = |m: &PageMeta| {
                    let mut u = m.mbr.clone();
                    u.extend_mbr(&my_mbr);
                    u.volume() - m.mbr.volume()
                };
                grow(a).partial_cmp(&grow(b)).expect("no NaN")
            })
            .map(|(j, _)| j);
        clock.charge_dist_evals(dim, self.pages().len() as u64);
        let Some(j) = partner else { return Ok(false) };

        // Model check: merged page at its best resolution vs the two pages
        // separately (plus one partition of constant cost).
        let disk = *clock.disk();
        let refine = *self.refine_params();
        let dirp = *self.dir_params();
        let sides_of = |mbr: &Mbr| -> Vec<f32> { (0..dim).map(|i| mbr.extent(i) as f32).collect() };
        let other = self.load_page(clock, j)?;
        let mut merged = LoadedPage {
            ids: page.ids.clone(),
            coords: page.coords.clone(),
        };
        merged.ids.extend_from_slice(&other.ids);
        merged.coords.extend_from_slice(&other.coords);
        let mg = self
            .codec()
            .max_bits_for(merged.ids.len())
            .expect("checked to fit at 1 bit");
        let merged_mbr = merged.mbr(dim);
        let merged_cost =
            iq_cost::refinement_cost(&refine, &disk, &sides_of(&merged_mbr), merged.ids.len(), mg);
        let n_pages = self.pages().len();
        let separate_cost = iq_cost::refinement_cost(
            &refine,
            &disk,
            &sides_of(&my_mbr),
            page.ids.len(),
            self.codec().max_bits_for(page.ids.len()).expect("fits"),
        ) + iq_cost::refinement_cost(
            &refine,
            &disk,
            &sides_of(&other.mbr(dim)),
            other.ids.len(),
            self.pages()[j].g,
        ) + (directory::constant_cost(&dirp, &disk, n_pages)
            - directory::constant_cost(&dirp, &disk, n_pages - 1));
        if merged_cost > separate_cost {
            return Ok(false);
        }
        // Apply: the partner page absorbs everything; this page is cleared.
        self.store_page(clock, j, &merged, mg)?;
        self.clear_page(clock, idx)?;
        Ok(true)
    }

    /// Marks a page empty (its blocks become dead space until a rebuild).
    /// The on-disk quantized block is overwritten with an empty page so no
    /// stale contents can ever be decoded.
    fn clear_page(&mut self, clock: &mut SimClock, idx: usize) -> IqResult<()> {
        let old = self.pages()[idx].clone();
        self.waste_exact(u64::from(old.exact_blocks));
        let empty = {
            let codec = *self.codec();
            codec.encode(&old.mbr, iq_quantize::EXACT_BITS, std::iter::empty())
        };
        let block = old.quant_block;
        self.dev_write(clock, Level::Quant, block, &empty)?;
        self.set_page_meta(
            idx,
            PageMeta {
                mbr: old.mbr,
                g: EXACT_BITS,
                count: 0,
                quant_block: old.quant_block,
                exact_start: 0,
                exact_blocks: 0,
            },
        );
        self.patch_dir_entry(clock, idx)
    }
}

#[cfg(test)]
mod tests {
    use crate::tests::{build_tree, random_ds};
    use crate::IqTreeOptions;
    use iq_geometry::{Dataset, Metric};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn brute_nn(ds: &Dataset, q: &[f32]) -> f64 {
        (0..ds.len())
            .map(|i| Metric::Euclidean.distance(ds.point(i), q))
            .fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn inserts_preserve_correctness() {
        let base = random_ds(600, 5, 21);
        let extra = random_ds(400, 5, 22);
        let (mut tree, mut clock) = build_tree(&base, IqTreeOptions::default(), 512);
        for (i, p) in extra.iter().enumerate() {
            tree.insert(&mut clock, (600 + i) as u32, p).unwrap();
        }
        assert_eq!(tree.len(), 1_000);
        let mut all = base.clone();
        for p in extra.iter() {
            all.push(p);
        }
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let q: Vec<f32> = (0..5).map(|_| rng.gen()).collect();
            let (_, d) = tree.nearest(&mut clock, &q).expect("non-empty");
            assert!((d - brute_nn(&all, &q)).abs() < 1e-6);
        }
        // Page invariants hold.
        let total: u32 = tree.pages().iter().map(|p| p.count).sum();
        assert_eq!(total as usize, tree.len());
    }

    #[test]
    fn overflow_splits_or_coarsens() {
        let base = random_ds(200, 4, 24);
        let (mut tree, mut clock) = build_tree(&base, IqTreeOptions::default(), 512);
        let pages_before = tree.num_pages();
        // Hammer one region so at least one page overflows repeatedly.
        let mut rng = StdRng::seed_from_u64(25);
        for i in 0..800u32 {
            let p: Vec<f32> = (0..4).map(|_| 0.25 + rng.gen::<f32>() * 0.1).collect();
            tree.insert(&mut clock, 200 + i, &p).unwrap();
        }
        assert_eq!(tree.len(), 1_000);
        assert!(
            tree.num_pages() > pages_before,
            "mass inserts must eventually split pages"
        );
    }

    #[test]
    fn delete_removes_points() {
        let ds = random_ds(500, 4, 26);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        // Delete the first 100 points.
        for i in 0..100u32 {
            assert!(
                tree.delete(&mut clock, i, ds.point(i as usize)).unwrap(),
                "point {i}"
            );
        }
        assert_eq!(tree.len(), 400);
        // Deleted points no longer appear in results.
        for i in 0..20u32 {
            let got = tree.knn(&mut clock, ds.point(i as usize), 3);
            assert!(got.iter().all(|&(id, _)| id >= 100), "{got:?}");
        }
        // Deleting a non-existent point reports false.
        assert!(!tree.delete(&mut clock, 0, ds.point(0)).unwrap());
    }

    #[test]
    fn delete_everything_leaves_empty_tree() {
        let ds = random_ds(80, 3, 27);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        for i in 0..80u32 {
            assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
        }
        assert!(tree.is_empty());
        assert!(tree.nearest(&mut clock, &[0.5, 0.5, 0.5]).is_none());
    }

    #[test]
    fn cleared_pages_never_resurrect_points() {
        // Regression: a page emptied by merge/delete keeps a stale MBR; an
        // insert choosing it must not decode its old on-disk contents.
        let ds = random_ds(300, 3, 29);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        // Delete points until merges/clears happen.
        for i in 0..250u32 {
            assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
        }
        assert_eq!(tree.len(), 50);
        // Insert into the emptied regions.
        for i in 0..200u32 {
            tree.insert(&mut clock, 1_000 + i, ds.point(i as usize))
                .unwrap();
        }
        assert_eq!(tree.len(), 250);
        let total: u32 = tree.pages().iter().map(|p| p.count).sum();
        assert_eq!(total as usize, tree.len());
        // Deleted originals are really gone.
        let hits = tree.range(&mut clock, ds.point(0), 1e-9);
        assert!(hits.iter().all(|&id| id >= 1_000), "{hits:?}");
    }

    #[test]
    fn deletes_can_trigger_model_approved_merges() {
        // Tight cluster: merging underflowing pages should be attractive.
        let mut ds = random_ds(600, 3, 30);
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..600 {
            use rand::Rng;
            let p: Vec<f32> = (0..3).map(|_| 0.5 + rng.gen::<f32>() * 0.01).collect();
            ds.push(&p);
        }
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        let pages_before = tree.pages().iter().filter(|p| p.count > 0).count();
        for i in 0..1_000u32 {
            assert!(tree.delete(&mut clock, i, ds.point(i as usize)).unwrap());
        }
        let pages_after = tree.pages().iter().filter(|p| p.count > 0).count();
        assert!(
            pages_after < pages_before,
            "{pages_after} vs {pages_before}"
        );
        assert_eq!(tree.len(), 200);
    }

    #[test]
    fn insert_then_delete_roundtrip() {
        let ds = random_ds(300, 4, 28);
        let (mut tree, mut clock) = build_tree(&ds, IqTreeOptions::default(), 512);
        let p = vec![0.111f32, 0.222, 0.333, 0.444];
        tree.insert(&mut clock, 9_999, &p).unwrap();
        let (id, d) = tree.nearest(&mut clock, &p).expect("non-empty");
        assert_eq!(id, 9_999);
        assert!(d < 1e-6);
        assert!(tree.delete(&mut clock, 9_999, &p).unwrap());
        let (id2, _) = tree.nearest(&mut clock, &p).expect("non-empty");
        assert_ne!(id2, 9_999);
    }
}
