//! Offline integrity verification of an IQ-tree's three files.
//!
//! [`verify_index`] takes the three *raw* devices (as stored on disk),
//! wraps them in the same [`ChecksummedDevice`] the tree itself uses, and
//! scans every block of every level: per-block CRCs, the superblock, the
//! directory payload CRC, per-entry metadata invariants, the decodability
//! of every quantized page, and cross-level consistency (each page holds
//! exactly the point count its directory entry records, and the ids in its
//! exact region agree entry-for-entry with the ids in the quantized page —
//! both levels are written from the same iteration order on build and on
//! every update). The result is a [`VerifyReport`]
//! that pinpoints each corrupt block by level and index — the `iq verify`
//! CLI command prints it and exits nonzero when anything is wrong.

use crate::persist::Superblock;
use crate::{dir_entry_bytes, PageMeta};
use iq_geometry::Mbr;
use iq_quantize::{ExactPageCodec, QuantizedPageCodec, EXACT_BITS};
use iq_storage::{crc32, BlockDevice, ChecksummedDevice, SimClock};

/// Per-level scan outcome.
#[derive(Clone, Debug, Default)]
pub struct LevelReport {
    /// Level name (`"directory"`, `"quantized"`, `"exact"`).
    pub name: &'static str,
    /// Total blocks in the file.
    pub blocks: u64,
    /// Blocks whose per-block CRC32 failed (or that could not be read).
    pub corrupt_blocks: Vec<u64>,
}

impl LevelReport {
    /// Whether every block of this level verified.
    pub fn is_clean(&self) -> bool {
        self.corrupt_blocks.is_empty()
    }
}

/// What scanning a write-ahead-log image found ([`verify_wal`]).
#[derive(Clone, Debug, Default)]
pub struct WalReport {
    /// Total bytes in the log image.
    pub bytes: u64,
    /// Whole frames that verified (CRC + consecutive LSNs).
    pub frames: u64,
    /// Committed transactions in the valid prefix.
    pub committed_txns: u64,
    /// Frames of an unfinished (uncommitted) trailing transaction —
    /// recovery would discard these.
    pub uncommitted_frames: u64,
    /// Bytes past the last whole frame (a torn tail).
    pub torn_bytes: u64,
    /// Why the frame scan stopped early, if it did.
    pub stop_reason: Option<String>,
}

impl WalReport {
    /// Whether the log is wholly valid with no recovery work pending: no
    /// torn tail, no unfinished transaction, every frame checksummed. A
    /// log that recovery has already processed is always clean.
    pub fn is_clean(&self) -> bool {
        self.stop_reason.is_none() && self.uncommitted_frames == 0 && self.torn_bytes == 0
    }
}

/// Scans a WAL image with the same frame validation recovery applies,
/// reporting instead of truncating.
pub fn verify_wal(image: &[u8]) -> WalReport {
    let s = iq_wal::scan(image);
    WalReport {
        bytes: image.len() as u64,
        frames: s.frames,
        committed_txns: s.txns.len() as u64,
        uncommitted_frames: s.uncommitted.len() as u64,
        torn_bytes: s.torn_bytes,
        stop_reason: s.stop_reason,
    }
}

/// Everything [`verify_index`] found.
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Per-level block scans: directory, quantized, exact.
    pub levels: Vec<LevelReport>,
    /// The decoded superblock, when block 0 was readable and valid.
    pub superblock: Option<Superblock>,
    /// Structural problems: superblock errors, directory payload CRC
    /// mismatch, invalid entries, undecodable pages.
    pub errors: Vec<String>,
    /// Quantized blocks that verified their CRC but do not decode as a
    /// page (possible after a torn write with a stale checksum).
    pub undecodable_pages: Vec<u64>,
    /// WAL frame scan, when [`verify_index_with_wal`] was given a log.
    pub wal: Option<WalReport>,
}

impl VerifyReport {
    /// Whether the index (and its WAL, when one was checked) is fully
    /// intact with no recovery work pending.
    pub fn is_clean(&self) -> bool {
        let wal_clean = match &self.wal {
            Some(w) => w.is_clean(),
            None => true,
        };
        self.levels.iter().all(LevelReport::is_clean)
            && self.errors.is_empty()
            && self.undecodable_pages.is_empty()
            && wal_clean
    }

    /// All corrupt blocks across levels as `(level name, block)` pairs.
    pub fn corrupt_blocks(&self) -> Vec<(&'static str, u64)> {
        self.levels
            .iter()
            .flat_map(|l| l.corrupt_blocks.iter().map(|&b| (l.name, b)))
            .collect()
    }
}

/// Scans every block of `dev`, returning the per-level report and the
/// bytes of each readable block (by index).
fn scan_level(
    name: &'static str,
    dev: &dyn BlockDevice,
    clock: &mut SimClock,
) -> (LevelReport, Vec<Option<Vec<u8>>>) {
    let blocks = dev.num_blocks();
    let mut report = LevelReport {
        name,
        blocks,
        corrupt_blocks: Vec::new(),
    };
    let mut contents = Vec::with_capacity(blocks as usize);
    for b in 0..blocks {
        // One block at a time: a corrupt block must not mask the health of
        // its neighbors, and the simulated cost of a sequential per-block
        // sweep equals one ranged read anyway.
        match dev.read_to_vec(clock, b, 1) {
            Ok(bytes) => contents.push(Some(bytes)),
            Err(_) => {
                report.corrupt_blocks.push(b);
                contents.push(None);
            }
        }
    }
    (report, contents)
}

/// Verifies an index given its three raw (unwrapped) level devices.
///
/// Never panics on corrupt input: every problem is recorded in the
/// returned [`VerifyReport`].
pub fn verify_index(
    dir: Box<dyn BlockDevice>,
    quant: Box<dyn BlockDevice>,
    exact: Box<dyn BlockDevice>,
    clock: &mut SimClock,
) -> VerifyReport {
    let dir = ChecksummedDevice::new(dir);
    let quant = ChecksummedDevice::new(quant);
    let exact = ChecksummedDevice::new(exact);
    let bs = dir.block_size();

    let mut report = VerifyReport::default();
    let (dir_rep, dir_blocks) = scan_level("directory", &dir, clock);
    let (quant_rep, quant_blocks) = scan_level("quantized", &quant, clock);
    let (exact_rep, exact_blocks_v) = scan_level("exact", &exact, clock);
    report.levels = vec![dir_rep, quant_rep];

    // Superblock.
    let sb = match dir_blocks.first() {
        None => {
            report.errors.push("directory file is empty".into());
            None
        }
        Some(None) => {
            report
                .errors
                .push("superblock (directory block 0) failed its checksum".into());
            None
        }
        Some(Some(bytes)) => match Superblock::decode(bytes) {
            Ok(sb) => Some(sb),
            Err(e) => {
                report.errors.push(format!("superblock: {e}"));
                None
            }
        },
    };
    report.superblock = sb;

    if let Some(sb) = sb {
        if sb.block_size as usize != bs {
            report.errors.push(format!(
                "superblock records block size {}, device uses {bs}",
                sb.block_size
            ));
        }
        if sb.quant_blocks != quant.num_blocks() {
            report.errors.push(format!(
                "superblock records {} quantized blocks, file has {}",
                sb.quant_blocks,
                quant.num_blocks()
            ));
        }
        if sb.exact_blocks > exact.num_blocks() {
            report.errors.push(format!(
                "superblock records {} exact blocks, file has only {}",
                sb.exact_blocks,
                exact.num_blocks()
            ));
        }

        // Directory payload: CRC over blocks 1.. and per-entry invariants.
        let dim = sb.dim as usize;
        let eb = dir_entry_bytes(dim);
        let n_pages = sb.n_pages as usize;
        let payload_blocks = (n_pages * eb).div_ceil(bs);
        let payload: Option<Vec<u8>> = (1..=payload_blocks)
            .map(|b| dir_blocks.get(b).cloned().flatten())
            .collect::<Option<Vec<Vec<u8>>>>()
            .map(|v| v.concat());
        let mut metas: Vec<(usize, PageMeta)> = Vec::new();
        match payload {
            None => report.errors.push(format!(
                "directory payload unreadable ({payload_blocks} blocks for {n_pages} entries)"
            )),
            Some(payload) => {
                let computed = crc32(&payload);
                if computed != sb.dir_crc {
                    report.errors.push(format!(
                        "directory payload CRC mismatch: superblock records {:#010x}, payload hashes to {computed:#010x}",
                        sb.dir_crc
                    ));
                }
                let mut total_points = 0u64;
                for e in 0..n_pages {
                    match decode_entry(&payload[e * eb..(e + 1) * eb], dim, &sb) {
                        Ok(meta) => {
                            total_points += u64::from(meta.count);
                            metas.push((e, meta));
                        }
                        Err(msg) => report.errors.push(format!("directory entry {e}: {msg}")),
                    }
                }
                if total_points != sb.n_points {
                    report.errors.push(format!(
                        "superblock records {} points, directory entries sum to {total_points}",
                        sb.n_points
                    ));
                }
            }
        }

        // Every quantized block must decode as a page (the directory maps
        // pages 1:1 onto quantized blocks).
        // Mirror the codec's precondition (header + one exact entry fits)
        // so a garbage dim in a forged superblock cannot make verify panic.
        if dim > 0 && bs >= 4 + 4 + 4 * dim {
            let codec = QuantizedPageCodec::new(dim, bs);
            for (b, bytes) in quant_blocks.iter().enumerate() {
                if let Some(bytes) = bytes {
                    if codec.try_view(bytes).is_err() {
                        report.undecodable_pages.push(b as u64);
                    }
                }
            }

            // Cross-level consistency for every decodable directory entry:
            // the page must hold exactly `count` entries, and for pages with
            // a separate exact region the level-3 ids must agree with the
            // level-2 ids entry for entry. Blocks that already failed the
            // CRC scan are skipped silently — they are reported above.
            let exact_codec = ExactPageCodec::new(dim);
            let entry_len = exact_codec.entry_bytes();
            let mut coords = vec![0.0f32; dim];
            for (e, meta) in &metas {
                let Some(Some(bytes)) = quant_blocks.get(meta.quant_block as usize) else {
                    continue;
                };
                let Ok(view) = codec.try_view(bytes) else {
                    continue;
                };
                if view.len() != meta.count as usize {
                    report.errors.push(format!(
                        "directory entry {e}: records {} points, page at block {} holds {}",
                        meta.count,
                        meta.quant_block,
                        view.len()
                    ));
                    continue;
                }
                if meta.g >= EXACT_BITS || meta.count == 0 {
                    continue;
                }
                let region: Option<Vec<u8>> = (meta.exact_start
                    ..meta.exact_start + u64::from(meta.exact_blocks))
                    .map(|b| exact_blocks_v.get(b as usize).cloned().flatten())
                    .collect::<Option<Vec<Vec<u8>>>>()
                    .map(|v| v.concat());
                let Some(region) = region else { continue };
                if region.len() < meta.count as usize * entry_len {
                    report.errors.push(format!(
                        "directory entry {e}: exact region of {} blocks too short for {} entries",
                        meta.exact_blocks, meta.count
                    ));
                    continue;
                }
                for i in 0..meta.count as usize {
                    let entry = &region[i * entry_len..(i + 1) * entry_len];
                    match exact_codec.try_decode_entry_into(entry, &mut coords) {
                        Ok(id) if id == view.id(i) => {}
                        Ok(id) => report.errors.push(format!(
                            "directory entry {e}: exact entry {i} has id {id}, quantized page has {}",
                            view.id(i)
                        )),
                        Err(err) => report
                            .errors
                            .push(format!("directory entry {e}: exact entry {i}: {err}")),
                    }
                }
            }
        }
    }
    report.levels.push(exact_rep);
    // Keep level order directory, quantized, exact.
    report.levels.swap(1, 2);
    report.levels.swap(1, 2);
    report
}

/// [`verify_index`] plus WAL frame validation: the log image is scanned
/// with the same checks recovery applies (frame CRCs, consecutive LSNs,
/// commit-frame boundaries) and the result lands in
/// [`VerifyReport::wal`]. A torn tail or an unfinished transaction makes
/// the report unclean — it means a crash happened and recovery
/// ([`crate::IqTree::open_with_wal`]) has not run yet.
pub fn verify_index_with_wal(
    dir: Box<dyn BlockDevice>,
    quant: Box<dyn BlockDevice>,
    exact: Box<dyn BlockDevice>,
    wal_image: &[u8],
    clock: &mut SimClock,
) -> VerifyReport {
    let mut report = verify_index(dir, quant, exact, clock);
    report.wal = Some(verify_wal(wal_image));
    report
}

/// Decodes one directory entry with the same validation `open` applies,
/// but collecting a message instead of an error type.
fn decode_entry(entry: &[u8], dim: usize, sb: &Superblock) -> Result<PageMeta, String> {
    let f32_at =
        |k: usize| f32::from_le_bytes(entry[4 * k..4 * k + 4].try_into().expect("4 bytes"));
    let lb: Vec<f32> = (0..dim).map(&f32_at).collect();
    let ub: Vec<f32> = (dim..2 * dim).map(&f32_at).collect();
    let tail = &entry[8 * dim..];
    let g = u32::from_le_bytes(tail[0..4].try_into().expect("4 bytes"));
    let count = u32::from_le_bytes(tail[4..8].try_into().expect("4 bytes"));
    let quant_block = u64::from_le_bytes(tail[8..16].try_into().expect("8 bytes"));
    let exact_start = u64::from_le_bytes(tail[16..24].try_into().expect("8 bytes"));
    let exact_blocks = u32::from_le_bytes(tail[24..28].try_into().expect("4 bytes"));
    if !(1..=EXACT_BITS).contains(&g) {
        return Err(format!("resolution g = {g} outside 1..=32"));
    }
    if quant_block >= sb.quant_blocks {
        return Err(format!(
            "quantized block {quant_block} outside file of {} blocks",
            sb.quant_blocks
        ));
    }
    if g < EXACT_BITS && exact_start + u64::from(exact_blocks) > sb.exact_blocks {
        return Err(format!(
            "exact region [{exact_start}, +{exact_blocks}) outside file of {} blocks",
            sb.exact_blocks
        ));
    }
    Ok(PageMeta {
        mbr: Mbr::from_bounds(lb, ub),
        g,
        count,
        quant_block,
        exact_start,
        exact_blocks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::random_ds;
    use crate::{IqTree, IqTreeOptions};
    use iq_geometry::Metric;
    use iq_storage::{FaultConfig, FaultInjectingDevice, IqResult, MemDevice};
    use std::sync::{Arc, Mutex};

    /// A MemDevice behind a shared handle, so the test keeps access to the
    /// raw (physical) blocks after handing the device to the tree.
    #[derive(Clone)]
    struct SharedDev(Arc<Mutex<MemDevice>>);

    impl SharedDev {
        fn new(bs: usize) -> Self {
            Self(Arc::new(Mutex::new(MemDevice::new(bs))))
        }
    }

    impl BlockDevice for SharedDev {
        fn block_size(&self) -> usize {
            self.0.lock().expect("lock").block_size()
        }
        fn num_blocks(&self) -> u64 {
            self.0.lock().expect("lock").num_blocks()
        }
        fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
            self.0.lock().expect("lock").read_blocks(clock, start, buf)
        }
        fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
            self.0.lock().expect("lock").append(clock, data)
        }
        fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
            self.0
                .lock()
                .expect("lock")
                .write_blocks(clock, start, data)
        }
        fn device_id(&self) -> u64 {
            self.0.lock().expect("lock").device_id()
        }
    }

    /// Builds an index over shared MemDevices; returns handles to the raw
    /// bytes (directory, quantized, exact) plus the page count.
    fn build_raw(n: usize, dim: usize, bs: usize) -> (Vec<SharedDev>, usize) {
        let ds = random_ds(n, dim, 44);
        let mut clock = SimClock::default();
        let handles: std::cell::RefCell<Vec<SharedDev>> = std::cell::RefCell::new(Vec::new());
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || {
                let dev = SharedDev::new(bs);
                handles.borrow_mut().push(dev.clone());
                Box::new(dev) as Box<dyn BlockDevice>
            },
            &mut clock,
        );
        let pages = tree.num_pages();
        drop(tree);
        (handles.into_inner(), pages)
    }

    /// Wraps a shared handle so a test can plant permanent bit flips on
    /// chosen physical blocks before verification.
    fn faulty(dev: &SharedDev, corrupt: &[u64]) -> Box<dyn BlockDevice> {
        let f = FaultInjectingDevice::new(Box::new(dev.clone()), FaultConfig::none(1));
        for &b in corrupt {
            f.corrupt_block(b);
        }
        Box::new(f)
    }

    #[test]
    fn clean_index_verifies_clean() {
        let (devs, pages) = build_raw(1_000, 4, 512);
        let mut clock = SimClock::default();
        let report = verify_index(
            faulty(&devs[0], &[]),
            faulty(&devs[1], &[]),
            faulty(&devs[2], &[]),
            &mut clock,
        );
        assert!(report.is_clean(), "{report:?}");
        let sb = report.superblock.expect("superblock decodes");
        assert_eq!(sb.n_pages as usize, pages);
        assert_eq!(sb.n_points, 1_000);
        assert_eq!(report.levels.len(), 3);
        assert_eq!(report.levels[1].blocks as usize, pages);
    }

    #[test]
    fn corrupt_quant_block_is_pinpointed() {
        let (devs, pages) = build_raw(1_000, 4, 512);
        assert!(pages >= 3);
        let mut clock = SimClock::default();
        let report = verify_index(
            faulty(&devs[0], &[]),
            faulty(&devs[1], &[2]),
            faulty(&devs[2], &[]),
            &mut clock,
        );
        assert!(!report.is_clean());
        assert_eq!(report.corrupt_blocks(), vec![("quantized", 2)]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    #[test]
    fn mismatched_exact_ids_are_reported() {
        // Forge an exact-region id *through* the checksum layer: the block
        // CRC stays valid, so only the cross-level id check can catch it.
        let (devs, _) = build_raw(1_000, 4, 512);
        let mut clock = SimClock::default();
        let mut exact = ChecksummedDevice::new(Box::new(devs[2].clone()) as Box<dyn BlockDevice>);
        assert!(exact.num_blocks() > 0, "expected quantized pages");
        let mut bytes = exact.read_to_vec(&mut clock, 0, 1).expect("readable");
        for b in &mut bytes[0..4] {
            *b ^= 0xFF; // the first entry's id
        }
        exact.write_blocks(&mut clock, 0, &bytes).expect("writable");
        drop(exact);
        let report = verify_index(
            faulty(&devs[0], &[]),
            faulty(&devs[1], &[]),
            faulty(&devs[2], &[]),
            &mut clock,
        );
        assert!(!report.is_clean());
        assert!(
            report.errors.iter().any(|e| e.contains("exact entry 0")),
            "{:?}",
            report.errors
        );
    }

    #[test]
    fn corrupt_superblock_is_reported() {
        let (devs, _) = build_raw(500, 3, 512);
        let mut clock = SimClock::default();
        let report = verify_index(
            faulty(&devs[0], &[0]),
            faulty(&devs[1], &[]),
            faulty(&devs[2], &[]),
            &mut clock,
        );
        assert!(!report.is_clean());
        assert!(report.superblock.is_none());
        assert!(
            report.errors.iter().any(|e| e.contains("superblock")),
            "{:?}",
            report.errors
        );
    }
}
