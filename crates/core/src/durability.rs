//! Crash consistency: transactional staging, WAL replay and checkpoints.
//!
//! Dynamic updates touch all three level files plus the superblock; a
//! crash between any two of those writes used to leave the index
//! permanently inconsistent. With a WAL attached ([`IqTree::attach_wal`])
//! every mutation follows a strict protocol:
//!
//! 1. **Stage** — while a transaction is open, `dev_write` / `dev_append` /
//!    `dev_truncate` (in `lib.rs`) do not touch the base files; they record
//!    physical after-images ([`WalRecord::PageWrite`] et al.) and maintain
//!    *virtual* level lengths so append positions and the superblock are
//!    computed as if the writes had happened.
//! 2. **Log** — `IqTree::commit_txn` appends the staged records plus a
//!    commit frame to the WAL and syncs. Only now is the operation durable.
//! 3. **Apply** — the staged images are applied to the base files, in
//!    order. A crash anywhere before step 2 completes leaves the base
//!    files untouched; a crash during step 3 is repaired on the next open
//!    by replaying the committed transaction (`replay_txns`), which is
//!    idempotent because every record is a positional byte image.
//!
//! Within one transaction the update code never reads a region it has
//! already staged a write to (all page loads happen before the first
//! staged write), so reads can keep going straight to the base files.
//!
//! [`IqTree::checkpoint`] folds the log into the base files: one final
//! transaction rewrites the exact level without its orphaned regions and
//! bumps the superblock generation, after which the WAL is emptied.

use crate::{IqTree, PageMeta};
use iq_quantize::EXACT_BITS;
use iq_storage::wal::WalStore;
use iq_storage::{BlockDevice, IqError, IqResult, SimClock};
use iq_wal::{Level, Wal, WalRecord};

/// Staged state of one open transaction.
pub(crate) struct Txn {
    /// Records in chronological order: the logical header first, then the
    /// physical after-images interleaved with semantic markers.
    pub(crate) records: Vec<WalRecord>,
    /// Virtual length (in logical blocks) of each level file, indexed by
    /// `Level as usize`, as it will be once the staged writes apply.
    pub(crate) len: [u64; 3],
    /// In-memory metadata snapshot for a clean abort.
    snapshot: MetaSnapshot,
}

/// Everything needed to roll the in-memory state back if a transaction
/// fails before its commit frame is durable.
struct MetaSnapshot {
    pages: Vec<PageMeta>,
    dir_bytes: Vec<u8>,
    n: usize,
    wasted_exact_blocks: u64,
    generation: u64,
}

/// What recovery found and did when opening an index through its WAL.
#[derive(Clone, Debug, Default)]
pub struct RecoveryReport {
    /// Committed transactions replayed onto the base files.
    pub replayed_txns: usize,
    /// Physical redo records applied during replay.
    pub replayed_frames: u64,
    /// Bytes discarded from the log tail: whole frames of an unfinished
    /// transaction plus any torn trailing bytes.
    pub discarded_bytes: u64,
    /// Frames of the unfinished (uncommitted) transaction, if one was
    /// found.
    pub uncommitted_frames: usize,
    /// Why the log scan stopped early, when it did (a torn or corrupt
    /// frame).
    pub stop_reason: Option<String>,
    /// Log bytes that remain after recovery (the committed prefix).
    pub wal_bytes: u64,
}

impl RecoveryReport {
    /// Whether the log was already clean: nothing replay-worthy was
    /// missing from the base files is not knowable here, but a clean log
    /// had no torn tail and no unfinished transaction.
    pub fn log_was_clean(&self) -> bool {
        self.discarded_bytes == 0 && self.stop_reason.is_none()
    }
}

/// Applies one record's physical redo to the right level device. Returns
/// `true` if the record carried bytes (markers and headers return
/// `false`). Idempotent: applying an already-applied record rewrites the
/// same bytes.
pub(crate) fn apply_redo_record<'a>(
    rec: &WalRecord,
    dir: &'a mut dyn BlockDevice,
    quant: &'a mut dyn BlockDevice,
    exact: &'a mut dyn BlockDevice,
    clock: &mut SimClock,
) -> IqResult<bool> {
    match rec {
        WalRecord::PageWrite {
            level,
            block,
            bytes,
        } => {
            let dev = match level {
                Level::Dir => &mut *dir,
                Level::Quant => &mut *quant,
                Level::Exact => &mut *exact,
            };
            dev.write_blocks(clock, *block, bytes)?;
            Ok(true)
        }
        WalRecord::PageAppend {
            level,
            block,
            bytes,
        } => {
            let dev = match level {
                Level::Dir => &mut *dir,
                Level::Quant => &mut *quant,
                Level::Exact => &mut *exact,
            };
            let bs = dev.block_size();
            let nblocks = bytes.len().div_ceil(bs) as u64;
            let len = dev.num_blocks();
            if *block > len {
                return Err(IqError::Decode {
                    detail: format!(
                        "wal append targets block {block} of a {len}-block {} file (gap)",
                        level.name()
                    ),
                });
            }
            let mut padded = bytes.clone();
            padded.resize(nblocks as usize * bs, 0);
            if *block == len {
                dev.append(clock, &padded)?;
            } else {
                // Replay after a partial apply: the file already grew past
                // (or into) this append. Overwrite the overlap, append the
                // remainder.
                let overlap = (len - *block).min(nblocks) as usize;
                dev.write_blocks(clock, *block, &padded[..overlap * bs])?;
                if (overlap as u64) < nblocks {
                    dev.append(clock, &padded[overlap * bs..])?;
                }
            }
            Ok(true)
        }
        WalRecord::TruncateLevel { level, nblocks } => {
            let dev = match level {
                Level::Dir => &mut *dir,
                Level::Quant => &mut *quant,
                Level::Exact => &mut *exact,
            };
            if *nblocks < dev.num_blocks() {
                dev.truncate_blocks(clock, *nblocks)?;
            }
            Ok(true)
        }
        // Logical headers and semantic markers carry no redo bytes.
        WalRecord::Insert { .. }
        | WalRecord::Delete { .. }
        | WalRecord::Requantize { .. }
        | WalRecord::Split { .. }
        | WalRecord::Checkpoint { .. }
        | WalRecord::Commit { .. } => Ok(false),
    }
}

/// Replays committed transactions onto the (already wrapped) level
/// devices, returning the number of redo records applied.
pub(crate) fn replay_txns(
    txns: &[iq_wal::CommittedTxn],
    dir: &mut dyn BlockDevice,
    quant: &mut dyn BlockDevice,
    exact: &mut dyn BlockDevice,
    clock: &mut SimClock,
) -> IqResult<u64> {
    let mut applied = 0u64;
    for txn in txns {
        for rec in &txn.records {
            if apply_redo_record(rec, dir, quant, exact, clock)? {
                applied += 1;
            }
        }
    }
    iq_obs::global()
        .counter("recovery_replayed_frames_total")
        .add(applied);
    Ok(applied)
}

impl IqTree {
    /// Attaches a write-ahead log. From now on every [`IqTree::insert`] and
    /// [`IqTree::delete`] is staged, logged with a commit frame, synced and
    /// only then applied to the level files — so a crash at any point
    /// leaves an index that [`IqTree::open_with_wal`] restores to exactly
    /// the committed prefix of operations.
    ///
    /// The store must be empty (a fresh log); to adopt an existing log use
    /// [`IqTree::open_with_wal`], which replays it first.
    pub fn attach_wal(&mut self, store: Box<dyn WalStore>) {
        assert!(
            store.is_empty(),
            "attach_wal expects a fresh log; open_with_wal adopts existing ones"
        );
        self.wal = Some(Wal::create(store));
    }

    /// Whether a WAL is attached (mutations are crash-consistent).
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Bytes currently in the attached WAL (0 without one).
    pub fn wal_bytes(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::len)
    }

    /// The superblock generation: bumped by every checkpoint (and by
    /// [`IqTree::rebuild`]).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the tree was opened read-only (an older on-disk format that
    /// this build reads but must not mutate).
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// Refuses mutations on read-only or poisoned trees.
    pub(crate) fn ensure_writable(&self) -> IqResult<()> {
        if self.read_only {
            return Err(IqError::Superblock {
                detail: format!(
                    "index is read-only: on-disk format version {} predates \
                     in-place updates (rebuild to upgrade)",
                    crate::persist::FORMAT_VERSION - 1
                ),
            });
        }
        if self.poisoned {
            return Err(IqError::Io {
                op: "update",
                block: 0,
                transient: false,
                detail: "a committed transaction failed to apply to the base files; \
                         reopen the index so recovery can replay it"
                    .into(),
            });
        }
        Ok(())
    }

    /// Opens a transaction when a WAL is attached (no-op otherwise: legacy
    /// direct-write mode). `header` describes the logical operation.
    pub(crate) fn begin_txn(&mut self, header: WalRecord) {
        if self.wal.is_none() {
            return;
        }
        debug_assert!(self.txn.is_none(), "nested transaction");
        self.txn = Some(Txn {
            records: vec![header],
            len: [
                self.dir.num_blocks(),
                self.quant.num_blocks(),
                self.exact.num_blocks(),
            ],
            snapshot: MetaSnapshot {
                pages: self.pages.clone(),
                dir_bytes: self.dir_bytes.clone(),
                n: self.n,
                wasted_exact_blocks: self.wasted_exact_blocks,
                generation: self.generation,
            },
        });
    }

    /// Adds a semantic marker (requantize/split) to the open transaction.
    /// No-op outside a transaction.
    pub(crate) fn note_record(&mut self, rec: WalRecord) {
        if let Some(txn) = self.txn.as_mut() {
            txn.records.push(rec);
        }
    }

    /// Rolls back an open transaction: staged writes are dropped, the
    /// in-memory metadata reverts to its snapshot. The base files were
    /// never touched.
    pub(crate) fn abort_txn(&mut self) {
        if let Some(txn) = self.txn.take() {
            let snap = txn.snapshot;
            self.pages = snap.pages;
            self.dir_bytes = snap.dir_bytes;
            self.n = snap.n;
            self.wasted_exact_blocks = snap.wasted_exact_blocks;
            self.generation = snap.generation;
        }
    }

    /// Commits the open transaction: log + sync first, then apply the
    /// staged images to the base files.
    ///
    /// If the log write fails the base files are untouched and the
    /// in-memory state rolls back — the operation simply did not happen.
    /// If the *apply* fails the operation IS durably committed; the tree
    /// is poisoned against further mutations and must be reopened so
    /// recovery can finish the apply.
    pub(crate) fn commit_txn(&mut self, clock: &mut SimClock) -> IqResult<()> {
        let Some(txn) = self.txn.take() else {
            return Ok(());
        };
        let wal = self.wal.as_mut().expect("open txn implies a wal");
        if let Err(e) = wal.commit_txn(clock, &txn.records) {
            let snap = txn.snapshot;
            self.pages = snap.pages;
            self.dir_bytes = snap.dir_bytes;
            self.n = snap.n;
            self.wasted_exact_blocks = snap.wasted_exact_blocks;
            self.generation = snap.generation;
            return Err(e);
        }
        for rec in &txn.records {
            if let Err(e) = apply_redo_record(
                rec,
                self.dir.as_mut(),
                self.quant.as_mut(),
                self.exact.as_mut(),
                clock,
            ) {
                self.poisoned = true;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Folds the WAL into the base files and reclaims the exact-level
    /// blocks orphaned by updates.
    ///
    /// One final transaction rewrites the exact file with only the live
    /// regions (in page order), patches every directory entry and writes a
    /// superblock with a bumped generation; once it commits and applies,
    /// the log is emptied. Returns the new generation.
    ///
    /// Requires an attached WAL (the operation is meaningless without
    /// one).
    pub fn checkpoint(&mut self, clock: &mut SimClock) -> IqResult<u64> {
        self.ensure_writable()?;
        if self.wal.is_none() {
            return Err(IqError::Io {
                op: "checkpoint",
                block: 0,
                transient: false,
                detail: "no WAL attached to checkpoint".into(),
            });
        }
        // Read every live exact region up front: within the transaction no
        // read may follow a staged write.
        let mut regions: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.pages.len());
        for idx in 0..self.pages.len() {
            let meta = &self.pages[idx];
            if meta.g < EXACT_BITS && meta.count > 0 && meta.exact_blocks > 0 {
                regions.push(Some(self.try_read_exact_region(clock, idx)?));
            } else {
                regions.push(None);
            }
        }

        self.begin_txn(WalRecord::Checkpoint {
            generation: self.generation + 1,
        });
        self.generation += 1;
        let result = (|| -> IqResult<()> {
            self.dev_truncate(clock, Level::Exact, 0)?;
            for (idx, region) in regions.iter().enumerate() {
                let meta = self.pages[idx].clone();
                let (exact_start, exact_blocks) = match region {
                    Some(bytes) => {
                        let start = self.dev_append(clock, Level::Exact, bytes)?;
                        (start, meta.exact_blocks)
                    }
                    None => (0, 0),
                };
                self.pages[idx] = PageMeta {
                    exact_start,
                    exact_blocks,
                    ..meta
                };
            }
            // One wholesale rewrite patches every entry and the superblock
            // (which now records the new generation and exact length).
            self.rewrite_directory(clock)
        })();
        if let Err(e) = result {
            self.abort_txn();
            return Err(e);
        }
        self.commit_txn(clock)?;
        // The fold is durable in the base files; empty the log.
        self.wal.as_mut().expect("checked above").reset(clock)?;
        self.wasted_exact_blocks = 0;
        iq_obs::global().gauge("wasted_exact_blocks").set(0.0);
        Ok(self.generation)
    }
}
