//! IQ-tree construction: initial partitioning and the optimal-quantization
//! algorithm (Sections 3.3 and 3.5).
//!
//! Construction proceeds in two phases:
//!
//! 1. **Initial partitioning** — the top-down median split of \[4\] until
//!    every partition fits a quantized page at the coarsest (1-bit)
//!    resolution. This tree is optimal in compression but possibly poor in
//!    accuracy.
//! 2. **Optimal quantization** — every partition may be split further;
//!    halving a partition's population lets each half use finer cells (more
//!    bits per dimension) at the price of one more page. The algorithm
//!    keeps all candidate partitions in a priority queue ordered by the
//!    *variable-cost benefit* of splitting them (the refinement-cost
//!    reduction, which the model guarantees to shrink with every further
//!    split), splits greedily until everything is exact (32-bit), records
//!    the model's total cost after every step, and finally undoes all
//!    splits beyond the recorded global minimum. This is the paper's
//!    `optimal_partitioning` with its `458,330^P → 32·P` reduction, and its
//!    optimality argument (Lemmas 1–2, Theorem 1) applies verbatim.

use iq_cost::{directory, refine::RefineParams, DirectoryParams};
use iq_geometry::{split_at_median, Dataset, Mbr, Partition};
use iq_quantize::{ExactPageCodec, QuantizedPageCodec, EXACT_BITS};
use iq_storage::DiskModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One page of the chosen solution: which points it holds and at which
/// resolution they are quantized.
#[derive(Clone, Debug)]
pub struct SolutionPage {
    /// Dataset rows stored in the page.
    pub ids: Vec<u32>,
    /// Tight MBR of those points.
    pub mbr: Mbr,
    /// Bits per dimension (32 = exact).
    pub g: u32,
}

/// The encoded byte images of one solution page: the level-2 quantized
/// block and, for `g < 32`, the level-3 exact region.
#[derive(Clone, Debug)]
pub struct EncodedPage {
    /// One block-sized quantized page image.
    pub quant: Vec<u8>,
    /// The exact `(id, coords)` rows (empty for `g == 32` pages).
    pub exact: Vec<u8>,
}

/// Encodes every solution page — per-page grid quantization, bit packing
/// and exact-row serialization, the CPU-bound half of page writing —
/// fanning the work out over `threads` scoped threads (`0` = one per
/// available core).
///
/// The output is **byte-for-byte identical** to sequential encoding for
/// every thread count: each page's encoding is a pure function of its own
/// points, and results are merged back in page order before anything
/// touches a device. The property tests assert this equality on the raw
/// device images.
pub fn encode_pages(
    ds: &Dataset,
    id_map: Option<&[u32]>,
    solution: &[SolutionPage],
    codec: &QuantizedPageCodec,
    exact_codec: &ExactPageCodec,
    threads: usize,
) -> Vec<EncodedPage> {
    let external = |row: u32| id_map.map_or(row, |m| m[row as usize]);
    let encode_one = |page: &SolutionPage| -> EncodedPage {
        let quant = codec.encode(
            &page.mbr,
            page.g,
            page.ids
                .iter()
                .map(|&row| (external(row), ds.point(row as usize))),
        );
        let exact = if page.g < EXACT_BITS {
            exact_codec.encode(
                page.ids
                    .iter()
                    .map(|&row| (external(row), ds.point(row as usize))),
            )
        } else {
            Vec::new()
        };
        EncodedPage { quant, exact }
    };
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    if threads < 2 || solution.len() < 2 {
        return solution.iter().map(encode_one).collect();
    }
    // Coarse work units: threads claim *chunks* of pages (≈4 per thread
    // over the whole build), not single pages, so the atomic counter and
    // the results mutex are touched once per chunk instead of once per
    // page. Chunks are index-stamped and merged back in page order, so
    // the output stays byte-identical to sequential encoding.
    let workers = threads.min(16);
    let chunk_size = solution.len().div_ceil(workers * 4).max(1);
    let next = AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<(usize, EncodedPage)>> =
        std::sync::Mutex::new(Vec::with_capacity(solution.len()));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let start = next.fetch_add(1, Ordering::Relaxed) * chunk_size;
                if start >= solution.len() {
                    break;
                }
                let end = (start + chunk_size).min(solution.len());
                let local: Vec<(usize, EncodedPage)> = solution[start..end]
                    .iter()
                    .enumerate()
                    .map(|(i, page)| (start + i, encode_one(page)))
                    .collect();
                results.lock().expect("results lock").extend(local);
            });
        }
    });
    let mut results = results.into_inner().expect("no poisoned lock");
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, e)| e).collect()
}

/// Diagnostics of an optimization run (exposed for tests, benches and the
/// paper's cost-model ablations).
#[derive(Clone, Debug, Default)]
pub struct OptimizeTrace {
    /// Modeled total cost after each split step (step 0 = initial
    /// partitioning).
    pub cost_per_step: Vec<f64>,
    /// The step with minimal modeled cost (the chosen solution).
    pub best_step: usize,
}

/// A node of the split forest.
struct SplitNode {
    part: Partition,
    /// Finest resolution at which the node's points fit one page.
    g: u32,
    /// Modeled refinement (variable) cost at that resolution.
    var_cost: f64,
    /// Children indices once the node has been (tentatively) split.
    children: Option<(usize, usize)>,
    /// Step at which the greedy loop applied this node's split
    /// (`usize::MAX` = never).
    split_step: usize,
}

/// Ordered f64 for the max-heap (finite by construction).
#[derive(PartialEq)]
struct Benefit(f64);
impl Eq for Benefit {}
impl PartialOrd for Benefit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Benefit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("benefits are never NaN")
    }
}

fn var_cost(params: &RefineParams, disk: &DiskModel, part: &Partition, g: u32) -> f64 {
    let sides: Vec<f32> = (0..part.mbr.dim())
        .map(|i| part.mbr.extent(i) as f32)
        .collect();
    iq_cost::refinement_cost(params, disk, &sides, part.len(), g)
}

/// Runs the optimal-quantization algorithm over the initial partitions.
///
/// With `quantize == false` the optimization is skipped and every partition
/// is split all the way down to the exact representation (the "IQ-tree
/// without quantization" ablation of Figure 7).
pub fn optimize_partitions(
    ds: &Dataset,
    codec: &QuantizedPageCodec,
    params: &RefineParams,
    dir_params: &DirectoryParams,
    disk: &DiskModel,
    initial: Vec<Partition>,
    quantize: bool,
) -> (Vec<SolutionPage>, OptimizeTrace) {
    assert!(!initial.is_empty(), "need at least one partition");
    if !quantize {
        return (exact_only(ds, codec, initial), OptimizeTrace::default());
    }

    let mut heap: BinaryHeap<(Benefit, Reverse<usize>)> = BinaryHeap::new();

    // Builds the full split forest below `part` (every non-terminal node is
    // split eventually, so pricing the whole forest up front costs nothing
    // extra), returning the new node's index. Heap entries are NOT created
    // here: a node becomes a split candidate only once it is a leaf of the
    // current partitioning, exactly as in the paper's sorted list.
    fn add_node(
        ds: &Dataset,
        codec: &QuantizedPageCodec,
        params: &RefineParams,
        disk: &DiskModel,
        arena: &mut Vec<SplitNode>,
        part: Partition,
    ) -> usize {
        let g = codec
            .max_bits_for(part.len())
            .expect("partition exceeds 1-bit page capacity: initial partitioning is broken");
        let vc = var_cost(params, disk, &part, g);
        let idx = arena.len();
        arena.push(SplitNode {
            part,
            g,
            var_cost: vc,
            children: None,
            split_step: usize::MAX,
        });
        if g < EXACT_BITS && arena[idx].part.len() >= 2 {
            let mut ids = arena[idx].part.ids.clone();
            let mbr = arena[idx].part.mbr.clone();
            let (l, r, _) = split_at_median(ds, &mut ids, &mbr);
            let li = add_node(ds, codec, params, disk, arena, Partition::of(ds, l));
            let ri = add_node(ds, codec, params, disk, arena, Partition::of(ds, r));
            arena[idx].children = Some((li, ri));
        }
        idx
    }

    // The split forest below each initial partition is independent of all
    // others: build them in parallel (deterministically — the merge order
    // is the root order, and each local forest is itself deterministic),
    // then rebase the local child indices into one arena.
    let local_forests: Vec<Vec<SplitNode>> = {
        let build_one = |part: Partition| -> Vec<SplitNode> {
            let mut local = Vec::new();
            add_node(ds, codec, params, disk, &mut local, part);
            local
        };
        let nthreads = std::thread::available_parallelism().map_or(1, |n| n.get());
        if initial.len() < 8 || nthreads < 2 {
            initial.into_iter().map(build_one).collect()
        } else {
            let jobs: Vec<(usize, Partition)> = initial.into_iter().enumerate().collect();
            let results: std::sync::Mutex<Vec<(usize, Vec<SplitNode>)>> =
                std::sync::Mutex::new(Vec::with_capacity(jobs.len()));
            let queue = std::sync::Mutex::new(jobs);
            std::thread::scope(|scope| {
                for _ in 0..nthreads.min(16) {
                    scope.spawn(|| loop {
                        let job = queue.lock().expect("queue lock").pop();
                        let Some((i, part)) = job else { break };
                        let forest = build_one(part);
                        results.lock().expect("results lock").push((i, forest));
                    });
                }
            });
            let mut results = results.into_inner().expect("no poisoned lock");
            results.sort_by_key(|&(i, _)| i);
            results.into_iter().map(|(_, f)| f).collect()
        }
    };
    let total_nodes: usize = local_forests.iter().map(Vec::len).sum();
    let mut arena: Vec<SplitNode> = Vec::with_capacity(total_nodes);
    let mut roots: Vec<usize> = Vec::with_capacity(local_forests.len());
    for local in local_forests {
        let offset = arena.len();
        roots.push(offset); // add_node pushes the root first
        arena.extend(local.into_iter().map(|mut node| {
            if let Some((l, r)) = node.children {
                node.children = Some((l + offset, r + offset));
            }
            node
        }));
    }

    // Benefit of splitting node `idx` (it has priced children).
    let benefit_of = |arena: &[SplitNode], idx: usize| -> Option<f64> {
        arena[idx]
            .children
            .map(|(l, r)| arena[idx].var_cost - (arena[l].var_cost + arena[r].var_cost))
    };
    for &idx in &roots {
        if let Some(b) = benefit_of(&arena, idx) {
            heap.push((Benefit(b), Reverse(idx)));
        }
    }

    // Greedy loop: always split the current partition with the largest
    // variable-cost benefit; its children then become candidates; record
    // the modeled total after every step.
    let mut n_leaves = roots.len();
    let mut total_var: f64 = roots.iter().map(|&i| arena[i].var_cost).sum();
    let mut trace = OptimizeTrace::default();
    let mut best_cost = directory::total_cost(dir_params, disk, n_leaves, total_var);
    trace.cost_per_step.push(best_cost);
    trace.best_step = 0;
    let mut step = 0usize;
    while let Some((Benefit(benefit), Reverse(idx))) = heap.pop() {
        step += 1;
        arena[idx].split_step = step;
        n_leaves += 1;
        total_var -= benefit;
        let cost = directory::total_cost(dir_params, disk, n_leaves, total_var);
        trace.cost_per_step.push(cost);
        if cost < best_cost {
            best_cost = cost;
            trace.best_step = step;
        }
        let (l, r) = arena[idx].children.expect("popped nodes are splittable");
        for child in [l, r] {
            if let Some(b) = benefit_of(&arena, child) {
                heap.push((Benefit(b), Reverse(child)));
            }
        }
    }

    // Undo all splits beyond the optimum: collect solution leaves.
    let mut solution = Vec::with_capacity(roots.len() + trace.best_step);
    let mut stack: Vec<usize> = roots.iter().rev().copied().collect();
    while let Some(idx) = stack.pop() {
        let node = &arena[idx];
        if node.split_step <= trace.best_step {
            let (l, r) = node.children.expect("split nodes have children");
            stack.push(r);
            stack.push(l);
        } else {
            solution.push(SolutionPage {
                ids: node.part.ids.clone(),
                mbr: node.part.mbr.clone(),
                g: node.g,
            });
        }
    }
    (solution, trace)
}

/// Splits every partition to the exact (32-bit) representation.
fn exact_only(
    ds: &Dataset,
    codec: &QuantizedPageCodec,
    initial: Vec<Partition>,
) -> Vec<SolutionPage> {
    let cap = codec.capacity(EXACT_BITS);
    let mut out = Vec::new();
    let mut stack = initial;
    stack.reverse();
    while let Some(part) = stack.pop() {
        if part.len() <= cap {
            out.push(SolutionPage {
                ids: part.ids,
                mbr: part.mbr,
                g: EXACT_BITS,
            });
        } else {
            let mut ids = part.ids;
            let (l, r, _) = split_at_median(ds, &mut ids, &part.mbr);
            // Keep in-order emission: push right first.
            stack.push(Partition::of(ds, r));
            stack.push(Partition::of(ds, l));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_geometry::{bulk_partition, Metric};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_ds(n: usize, dim: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        ds
    }

    fn setup(
        n: usize,
        dim: usize,
        bs: usize,
    ) -> (
        Dataset,
        QuantizedPageCodec,
        RefineParams,
        DirectoryParams,
        DiskModel,
    ) {
        let ds = random_ds(n, dim, 7);
        let codec = QuantizedPageCodec::new(dim, bs);
        let params = RefineParams::uniform(Metric::Euclidean, dim, n);
        let dirp = DirectoryParams::new(Metric::Euclidean, dim, dim as f64, n);
        (ds, codec, params, dirp, DiskModel::default())
    }

    fn check_solution(ds: &Dataset, codec: &QuantizedPageCodec, sol: &[SolutionPage]) {
        // Every point exactly once; every page fits its resolution; MBRs
        // tight.
        let mut seen = vec![false; ds.len()];
        for page in sol {
            assert!(
                page.ids.len() <= codec.capacity(page.g),
                "page overflow at g={}",
                page.g
            );
            assert!((1..=EXACT_BITS).contains(&page.g));
            for &id in &page.ids {
                assert!(!seen[id as usize]);
                seen[id as usize] = true;
                assert!(page.mbr.contains_point(ds.point(id as usize)));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn solution_is_a_valid_partitioning() {
        let (ds, codec, params, dirp, disk) = setup(3_000, 8, 1024);
        let initial = bulk_partition(&ds, codec.capacity(1));
        let (sol, trace) =
            optimize_partitions(&ds, &codec, &params, &dirp, &disk, initial.clone(), true);
        check_solution(&ds, &codec, &sol);
        assert!(sol.len() >= initial.len());
        assert!(!trace.cost_per_step.is_empty());
    }

    #[test]
    fn trace_cost_at_best_step_is_minimum() {
        let (ds, codec, params, dirp, disk) = setup(2_000, 6, 512);
        let initial = bulk_partition(&ds, codec.capacity(1));
        let (_, trace) = optimize_partitions(&ds, &codec, &params, &dirp, &disk, initial, true);
        let min = trace
            .cost_per_step
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        assert!((trace.cost_per_step[trace.best_step] - min).abs() < 1e-12);
    }

    #[test]
    fn solution_count_matches_best_step() {
        let (ds, codec, params, dirp, disk) = setup(1_500, 4, 512);
        let initial = bulk_partition(&ds, codec.capacity(1));
        let p = initial.len();
        let (sol, trace) = optimize_partitions(&ds, &codec, &params, &dirp, &disk, initial, true);
        assert_eq!(sol.len(), p + trace.best_step);
    }

    #[test]
    fn exact_only_splits_to_32_bits() {
        let (ds, codec, params, dirp, disk) = setup(1_000, 5, 512);
        let initial = bulk_partition(&ds, codec.capacity(1));
        let (sol, _) = optimize_partitions(&ds, &codec, &params, &dirp, &disk, initial, false);
        check_solution(&ds, &codec, &sol);
        assert!(sol.iter().all(|p| p.g == EXACT_BITS));
    }

    #[test]
    fn greedy_matches_exhaustive_on_tiny_input() {
        // Brute-force check of Theorem 1 on a single initial partition with
        // a short split tree: enumerate every valid solution (Definition 1)
        // and verify the greedy finds one with minimal modeled cost.
        let (ds, codec, params, dirp, disk) = setup(40, 3, 256);
        let initial = bulk_partition(&ds, codec.capacity(1));
        assert_eq!(initial.len(), 1, "want a single root for the enumeration");

        // Enumerate solutions recursively: a node is either kept (a leaf of
        // the solution) or split, combining all sub-solutions.
        #[derive(Clone)]
        struct Enum {
            leaves: Vec<(Vec<u32>, Mbr, u32)>,
        }
        fn enumerate(ds: &Dataset, codec: &QuantizedPageCodec, part: &Partition) -> Vec<Enum> {
            let g = codec.max_bits_for(part.len()).expect("fits");
            let keep = Enum {
                leaves: vec![(part.ids.clone(), part.mbr.clone(), g)],
            };
            if g >= EXACT_BITS || part.len() < 2 {
                return vec![keep];
            }
            let mut ids = part.ids.clone();
            let (l, r, _) = split_at_median(ds, &mut ids, &part.mbr);
            let ls = enumerate(ds, codec, &Partition::of(ds, l));
            let rs = enumerate(ds, codec, &Partition::of(ds, r));
            let mut out = vec![keep];
            for a in &ls {
                for b in &rs {
                    let mut leaves = a.leaves.clone();
                    leaves.extend(b.leaves.iter().cloned());
                    out.push(Enum { leaves });
                }
            }
            out
        }

        let all = enumerate(&ds, &codec, &initial[0]);
        let cost_of = |e: &Enum| -> f64 {
            let total_var: f64 = e
                .leaves
                .iter()
                .map(|(ids, mbr, g)| {
                    let p = Partition {
                        ids: ids.clone(),
                        mbr: mbr.clone(),
                    };
                    var_cost(&params, &disk, &p, *g)
                })
                .sum();
            directory::total_cost(&dirp, &disk, e.leaves.len(), total_var)
        };
        let brute_best = all.iter().map(cost_of).fold(f64::INFINITY, f64::min);

        let (sol, trace) = optimize_partitions(&ds, &codec, &params, &dirp, &disk, initial, true);
        let greedy_cost = trace.cost_per_step[trace.best_step];
        assert!(
            (greedy_cost - brute_best).abs() < 1e-9,
            "greedy {greedy_cost} vs brute force {brute_best} ({} solutions)",
            all.len()
        );
        check_solution(&ds, &codec, &sol);
    }

    #[test]
    fn skewed_data_gets_heterogeneous_resolutions() {
        // Half the points crammed into a tiny corner, half spread out: the
        // optimizer should give different pages different bit resolutions.
        let mut ds = Dataset::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut row = [0.0f32; 4];
        for _ in 0..2_000 {
            row.fill_with(|| rng.gen::<f32>() * 0.01);
            ds.push(&row);
        }
        for _ in 0..2_000 {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let codec = QuantizedPageCodec::new(4, 512);
        let params = RefineParams::uniform(Metric::Euclidean, 4, ds.len());
        let dirp = DirectoryParams::new(Metric::Euclidean, 4, 4.0, ds.len());
        let initial = bulk_partition(&ds, codec.capacity(1));
        let (sol, _) =
            optimize_partitions(&ds, &codec, &params, &dirp, &disk_default(), initial, true);
        let gs: std::collections::HashSet<u32> = sol.iter().map(|p| p.g).collect();
        assert!(
            gs.len() >= 2,
            "expected heterogeneous resolutions, got {gs:?}"
        );
    }

    fn disk_default() -> DiskModel {
        DiskModel::default()
    }
}
