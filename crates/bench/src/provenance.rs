//! Run provenance for benchmark artifacts.
//!
//! Committed BENCH_*.json files are only comparable across runs when the
//! reader knows *what* produced them: the git commit, the SIMD dispatch
//! tier the run selected, and how many cores the machine offered. This
//! module collects those once, dependency-free (the commit is read
//! straight from `.git`, no subprocess), and renders them as the
//! `provenance` header every bench JSON carries.

use std::path::Path;

/// What produced a benchmark artifact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Git commit hash of the working tree, or `"unknown"` outside a
    /// repository.
    pub commit: String,
    /// Selected scan-kernel dispatch tier name (`avx2`/`sse41`/`scalar`).
    pub kernel: String,
    /// The tier's stable numeric code (0 = scalar, 1 = sse41, 2 = avx2).
    pub simd_code: u8,
    /// `std::thread::available_parallelism` at collection time.
    pub available_cores: usize,
    /// Caller-supplied run date (bench bins take `IQ_BENCH_DATE`, the CLI
    /// takes `--date`); `"unknown"` when not passed.
    pub date: String,
}

/// Collects the provenance of the current process. `date` is passed in by
/// the caller — benchmarks are deterministic and take timestamps from the
/// outside, never from the clock.
pub fn collect(date: Option<&str>) -> Provenance {
    Provenance {
        commit: git_commit().unwrap_or_else(|| "unknown".to_string()),
        kernel: iq_quantize::kernel_name().to_string(),
        simd_code: iq_quantize::simd::kernel().code(),
        available_cores: std::thread::available_parallelism().map_or(1, usize::from),
        date: date.unwrap_or("unknown").to_string(),
    }
}

impl Provenance {
    /// The provenance as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"commit\": \"{}\", \"kernel\": \"{}\", \"simd_code\": {}, \
             \"available_cores\": {}, \"date\": \"{}\"}}",
            self.commit, self.kernel, self.simd_code, self.available_cores, self.date,
        )
    }
}

/// Reads the checked-out commit from `.git/HEAD`, following one level of
/// `ref:` indirection, walking up from the current directory. No `git`
/// subprocess: works in containers without git and costs two file reads.
fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if head.is_file() {
            return resolve_head(&dir.join(".git"), &head);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn resolve_head(gitdir: &Path, head: &Path) -> Option<String> {
    let text = std::fs::read_to_string(head).ok()?;
    let text = text.trim();
    if let Some(r) = text.strip_prefix("ref: ") {
        let target = std::fs::read_to_string(gitdir.join(r.trim())).ok();
        let hash = match target {
            Some(t) => t.trim().to_string(),
            // Packed refs: scan .git/packed-refs for the ref name.
            None => {
                let packed = std::fs::read_to_string(gitdir.join("packed-refs")).ok()?;
                packed.lines().find_map(|line| {
                    let (hash, name) = line.split_once(' ')?;
                    (name.trim() == r.trim()).then(|| hash.to_string())
                })?
            }
        };
        is_hash(&hash).then_some(hash)
    } else {
        is_hash(text).then(|| text.to_string())
    }
}

fn is_hash(s: &str) -> bool {
    s.len() >= 7 && s.chars().all(|c| c.is_ascii_hexdigit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_fills_every_field() {
        let p = collect(Some("2026-08-08"));
        assert_eq!(p.date, "2026-08-08");
        assert!(["avx2", "sse41", "scalar"].contains(&p.kernel.as_str()));
        assert!(p.simd_code <= 2);
        assert!(p.available_cores >= 1);
        // This test runs inside the repo: the commit must resolve.
        assert!(p.commit == "unknown" || is_hash(&p.commit));
    }

    #[test]
    fn json_has_the_header_shape() {
        let p = collect(None);
        let j = p.to_json();
        for key in [
            "\"commit\"",
            "\"kernel\"",
            "\"simd_code\"",
            "\"available_cores\"",
            "\"date\": \"unknown\"",
        ] {
            assert!(j.contains(key), "{key} missing in {j}");
        }
        let v = iq_obs::json::parse(&j).expect("valid JSON");
        assert!(v.get("commit").is_some());
    }
}
