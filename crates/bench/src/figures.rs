//! One function per figure of the paper's evaluation.
//!
//! Paper workloads:
//! * Fig 7 — UNIFORM, 500k points, d = 4…16: IQ-tree concept ablation.
//! * Fig 8 — UNIFORM, 500k points, d = 4…16: IQ-tree vs X-tree vs VA-file
//!   vs scan.
//! * Fig 9 — UNIFORM, d = 16, N = 100k…500k.
//! * Fig 10 — CAD, d = 16, N = 100k…500k.
//! * Fig 11 — COLOR, d = 16, N = 40k…100k.
//! * Fig 12 — WEATHER, d = 9, N = 100k…500k.
//!
//! Plus two setup experiments the paper describes in text: the optimal
//! batch-fetch strategy of Figure 1, and the VA-file bits sweep of
//! Section 4.2.

use crate::{Config, DataKind, Table};
use iq_storage::{fetch, DiskModel};
use iq_tree::IqTreeOptions;
use rand::{rngs::StdRng, Rng, SeedableRng};

const DIMS: [usize; 7] = [4, 6, 8, 10, 12, 14, 16];

/// Figure 7: impact of the particular concepts (UNIFORM, 500k points,
/// varying dimension) — four IQ-tree variants.
pub fn fig7(cfg: &Config) -> Table {
    let n = cfg.scaled(500_000);
    let mut t = Table::new(
        &format!(
            "Figure 7 - UNIFORM, {n} points, varying dimension (avg NN total time, simulated s)"
        ),
        "dim",
        &["opt+quant", "opt+noquant", "std+quant", "std+noquant"],
    );
    for dim in DIMS {
        let w = DataKind::Uniform.workload(dim, n, cfg.queries, cfg.seed);
        let variants = [
            IqTreeOptions::default(),
            IqTreeOptions {
                quantize: false,
                ..Default::default()
            },
            IqTreeOptions {
                scheduled_io: false,
                ..Default::default()
            },
            IqTreeOptions {
                quantize: false,
                scheduled_io: false,
                ..Default::default()
            },
        ];
        let vals: Vec<f64> = variants
            .into_iter()
            .map(|o| crate::run_iqtree(cfg, &w, o).total)
            .collect();
        t.push_row(dim, vals);
        eprintln!("fig7: dim {dim} done");
    }
    t
}

/// Figure 8: performance comparison on UNIFORM, 500k points, varying
/// dimension.
pub fn fig8(cfg: &Config) -> Table {
    let n = cfg.scaled(500_000);
    let mut t = Table::new(
        &format!(
            "Figure 8 - UNIFORM, {n} points, varying dimension (avg NN total time, simulated s)"
        ),
        "dim",
        &["IQ-tree", "X-tree", "VA-file", "Scan"],
    );
    for dim in DIMS {
        let w = DataKind::Uniform.workload(dim, n, cfg.queries, cfg.seed);
        let iq = crate::run_iqtree(cfg, &w, IqTreeOptions::default()).total;
        let x = crate::run_xtree(cfg, &w).total;
        let (_, va) = crate::run_vafile_best(cfg, &w);
        let scan = crate::run_scan(cfg, &w).total;
        t.push_row(dim, vec![iq, x, va.total, scan]);
        eprintln!("fig8: dim {dim} done");
    }
    t
}

/// Shared shape of Figures 9–12: fixed dimension, varying database size.
fn size_sweep(cfg: &Config, kind: DataKind, dim: usize, sizes: &[usize], title: &str) -> Table {
    let mut t = Table::new(title, "N", &["IQ-tree", "X-tree", "VA-file", "Scan"]);
    for &n0 in sizes {
        let n = cfg.scaled(n0);
        let w = kind.workload(dim, n, cfg.queries, cfg.seed);
        let iq = crate::run_iqtree(cfg, &w, IqTreeOptions::default()).total;
        let x = crate::run_xtree(cfg, &w).total;
        let (_, va) = crate::run_vafile_best(cfg, &w);
        let scan = crate::run_scan(cfg, &w).total;
        t.push_row(n, vec![iq, x, va.total, scan]);
        eprintln!(
            "{}: N {} done",
            title.split(' ').take(2).collect::<Vec<_>>().join(" "),
            n
        );
    }
    t
}

/// Figure 9: UNIFORM, 16 dimensions, varying the number of points.
pub fn fig9(cfg: &Config) -> Table {
    size_sweep(
        cfg,
        DataKind::Uniform,
        16,
        &[100_000, 200_000, 300_000, 400_000, 500_000],
        "Figure 9 - UNIFORM, 16 dims, varying N (avg NN total time, simulated s)",
    )
}

/// Figure 10: CAD analogue, 16 dimensions, varying the number of points.
pub fn fig10(cfg: &Config) -> Table {
    size_sweep(
        cfg,
        DataKind::Cad,
        16,
        &[100_000, 200_000, 300_000, 400_000, 500_000],
        "Figure 10 - CAD, 16 dims, varying N (avg NN total time, simulated s)",
    )
}

/// Figure 11: COLOR analogue, 16 dimensions, varying the number of points.
pub fn fig11(cfg: &Config) -> Table {
    size_sweep(
        cfg,
        DataKind::Color,
        16,
        &[40_000, 60_000, 80_000, 100_000],
        "Figure 11 - COLOR, 16 dims, varying N (avg NN total time, simulated s)",
    )
}

/// Figure 12: WEATHER analogue, 9 dimensions, varying the number of
/// points.
pub fn fig12(cfg: &Config) -> Table {
    size_sweep(
        cfg,
        DataKind::Weather,
        9,
        &[100_000, 200_000, 300_000, 400_000, 500_000],
        "Figure 12 - WEATHER, 9 dims, varying N (avg NN total time, simulated s)",
    )
}

/// Figure 1 (concept): the optimal batch block-fetch strategy versus naive
/// random accesses and a full scan, varying the selectivity (fraction of
/// blocks selected out of a 100k-block file).
pub fn fig1_fetch(cfg: &Config) -> Table {
    let disk: DiskModel = cfg.disk;
    let total_blocks: u64 = 100_000;
    let mut t = Table::new(
        "Figure 1 (concept) - batch fetch of n of 100k blocks (simulated s)",
        "sel%",
        &["optimal", "random", "full-scan"],
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for sel_pct in [0.01, 0.1, 1.0, 5.0, 10.0, 25.0, 50.0] {
        let n = ((total_blocks as f64) * sel_pct / 100.0).round() as usize;
        let mut positions: Vec<u64> = (0..n).map(|_| rng.gen_range(0..total_blocks)).collect();
        positions.sort_unstable();
        positions.dedup();
        let runs = fetch::plan_fetch(&positions, &disk);
        let optimal = fetch::plan_fetch_cost(&runs, &disk);
        let random = disk.random_cost(positions.len() as u64);
        let scan = disk.scan_cost(total_blocks);
        t.push_row(format!("{sel_pct}"), vec![optimal, random, scan]);
    }
    t
}

/// Section 4.2 setup: the VA-file bits-per-dimension sweep (UNIFORM, 16
/// dims) that the paper performs manually before each comparison.
pub fn va_sweep(cfg: &Config) -> Table {
    let n = cfg.scaled(100_000);
    let w = DataKind::Uniform.workload(16, n, cfg.queries, cfg.seed);
    let mut t = Table::new(
        &format!(
            "VA-file bits sweep - UNIFORM, 16 dims, {n} points (avg NN total time, simulated s)"
        ),
        "bits",
        &["VA-file"],
    );
    for bits in 2..=8u32 {
        t.push_row(bits, vec![crate::run_vafile(cfg, &w, bits).total]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny smoke versions of the figure drivers (full-scale runs live in
    /// the binaries).
    fn smoke_cfg() -> Config {
        let mut c = Config::tiny();
        c.scale_div = 1;
        c.queries = 3;
        c
    }

    #[test]
    fn fig1_fetch_optimal_never_worse() {
        let t = fig1_fetch(&smoke_cfg());
        for (x, vals) in &t.rows {
            let (optimal, random, scan) = (vals[0], vals[1], vals[2]);
            assert!(optimal <= random + 1e-9, "sel {x}");
            assert!(optimal <= scan + 1e-9, "sel {x}");
        }
    }

    #[test]
    fn va_sweep_runs() {
        let mut cfg = smoke_cfg();
        cfg.scale_div = 50; // 2k points
        let t = va_sweep(&cfg);
        assert_eq!(t.rows.len(), 7);
        assert!(t.rows.iter().all(|(_, v)| v[0] > 0.0));
    }
}
