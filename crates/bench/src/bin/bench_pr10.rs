//! PR 10 performance artifact: span-API overhead of the structured
//! tracing layer — the disabled path (one branch per call, what every
//! un-sampled query pays) against the PR 5 disabled-counter floor, and
//! the enabled per-span cost a sampled query pays. Writes
//! `BENCH_PR10.json` with a provenance header. `IQ_QUICK=1` shrinks the
//! workload for CI smoke tests; `IQ_BENCH_DATE` stamps the run date.

fn main() {
    let quick = std::env::var("IQ_QUICK").map(|v| v == "1").unwrap_or(false);
    let date = std::env::var("IQ_BENCH_DATE").ok();
    let json = iq_bench::kernels::run_pr10(quick, date.as_deref());
    print!("{json}");
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    eprintln!("wrote BENCH_PR10.json");
}
