//! Runs the parallel-build thread sweep (1, 2, 4 and 8 explicitly spawned
//! workers, byte-identity checked against the sequential encode) and
//! writes `BENCH_PR6.json`. `IQ_QUICK=1` shrinks the run for CI smoke
//! tests.

fn main() {
    let quick = std::env::var("IQ_QUICK").map(|v| v == "1").unwrap_or(false);
    let json = iq_bench::kernels::run_pr6(quick);
    print!("{json}");
    std::fs::write("BENCH_PR6.json", &json).expect("write BENCH_PR6.json");
    eprintln!("wrote BENCH_PR6.json");
}
