//! Measures real wall-clock build time of the IQ-tree at paper scale and
//! verifies the parallel construction is deterministic.
use iq_geometry::Metric;
use iq_storage::{MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use std::time::Instant;

fn main() {
    let ds = iq_data::uniform(16, 500_000, 1);
    let mut results = Vec::new();
    for run in 0..2 {
        let mut clock = SimClock::default();
        let t0 = Instant::now();
        let tree = IqTree::build(
            &ds,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        let wall = t0.elapsed();
        println!(
            "run {run}: {} pages, bits {:?}, wall {:.2?}",
            tree.num_pages(),
            tree.bits_histogram(),
            wall
        );
        results.push((tree.num_pages(), tree.bits_histogram()));
    }
    assert_eq!(
        results[0], results[1],
        "parallel build must be deterministic"
    );
    println!("deterministic: ok");
}
