//! Runs the quantized-domain kernel microbenchmarks and writes
//! `BENCH_PR4.json` (page-scan filter throughput naive vs kernel, table
//! build cost, parallel build speedup). `IQ_QUICK=1` shrinks the run for
//! CI smoke tests.

fn main() {
    let quick = std::env::var("IQ_QUICK").map(|v| v == "1").unwrap_or(false);
    let json = iq_bench::kernels::run_all(quick);
    print!("{json}");
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    eprintln!("wrote BENCH_PR4.json");
}
