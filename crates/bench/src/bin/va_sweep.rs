//! The VA-file bits-per-dimension sweep of Section 4.2.
fn main() {
    let cfg = iq_bench::Config::from_env();
    print!("{}", iq_bench::figures::va_sweep(&cfg).render());
}
