//! Regenerates Figure 10 of the IQ-tree paper. `IQ_QUICK=1` for a fast smoke run.
fn main() {
    let cfg = iq_bench::Config::from_env();
    print!("{}", iq_bench::figures::fig10(&cfg).render());
}
