//! Ablations and extension experiments beyond the paper's figures:
//! k-NN sweep, fractal-correction ablation, scheduler ablation, cost-model
//! validation, and the eq-12 Minkowski approximation check.
fn main() {
    let cfg = iq_bench::Config::from_env();
    for t in [
        iq_bench::ablations::knn_sweep(&cfg),
        iq_bench::ablations::fractal_ablation(&cfg),
        iq_bench::ablations::scheduler_ablation(&cfg),
        iq_bench::ablations::model_validation(&cfg),
        iq_bench::ablations::minkowski_comparison(&cfg),
        iq_bench::ablations::knn_model_check(&cfg),
        iq_bench::ablations::fractal_sweep(&cfg),
        iq_bench::ablations::cache_ablation(&cfg),
        iq_bench::ablations::va_auto_ablation(&cfg),
        iq_bench::ablations::block_size_sweep(&cfg),
    ] {
        println!("{}", t.render());
    }
}
