//! Regenerates every experiment of the paper's evaluation in one run.
fn main() {
    let cfg = iq_bench::Config::from_env();
    let tables = [
        iq_bench::figures::fig1_fetch(&cfg),
        iq_bench::figures::va_sweep(&cfg),
        iq_bench::figures::fig7(&cfg),
        iq_bench::figures::fig8(&cfg),
        iq_bench::figures::fig9(&cfg),
        iq_bench::figures::fig10(&cfg),
        iq_bench::figures::fig11(&cfg),
        iq_bench::figures::fig12(&cfg),
    ];
    for t in tables {
        println!("{}", t.render());
    }
}
