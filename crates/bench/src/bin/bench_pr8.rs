//! Sweeps the approximate k-NN knobs (ε, nprobes, refine_factor) over the
//! IQ-tree, X-tree and VA-file on the 10k clustered synthetic index and
//! writes `BENCH_PR8.json` with recall@10 vs sim-time speedup curves plus
//! a measured "recommended" setting. `IQ_QUICK=1` shrinks the query count
//! for CI smoke tests.

fn main() {
    let quick = std::env::var("IQ_QUICK").map(|v| v == "1").unwrap_or(false);
    let json = iq_bench::approx::run_pr8(quick);
    print!("{json}");
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    eprintln!("wrote BENCH_PR8.json");
}
