//! Per-method I/O profile: decomposes the average NN query cost (I/O vs
//! CPU, seeks vs blocks) of the IQ-tree (scheduled and standard access)
//! and the X-tree, across the four data distributions. Useful when tuning
//! the disk/CPU model or diagnosing scheduler behavior.
use iq_bench::{measure, Config, DataKind};
use iq_geometry::Metric;
use iq_storage::{MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use iq_xtree::{XTree, XTreeOptions};

fn main() {
    let cfg = Config::tiny();
    for (name, kind, dim) in [
        ("cad", DataKind::Cad, 16),
        ("color", DataKind::Color, 16),
        ("uniform", DataKind::Uniform, 16),
        ("weather", DataKind::Weather, 9),
    ] {
        let w = kind.workload(dim, 100_000, 5, 1);
        let df = iq_bench::estimate_fractal(&w.db);
        let mut clock = SimClock::new(cfg.disk, cfg.cpu);
        let opts = IqTreeOptions {
            fractal_dim: Some(df),
            ..Default::default()
        };
        let tree = IqTree::build(
            &w.db,
            Metric::Euclidean,
            opts,
            || Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        let s = measure(&w.queries, &mut clock, |c, q| {
            tree.nearest(c, q);
        });
        println!(
            "{name:8} IQ: total={:7.3}s io={:7.3} cpu={:6.3} seeks={:6.1} blocks={:7.1} pages={} bits={:?}",
            s.total, s.io, s.cpu, s.seeks, s.blocks, tree.num_pages(), tree.bits_histogram()
        );
        // Ablation: no scheduler.
        let opts = IqTreeOptions {
            fractal_dim: Some(df),
            scheduled_io: false,
            ..Default::default()
        };
        let mut clock = SimClock::new(cfg.disk, cfg.cpu);
        let tree2 = IqTree::build(
            &w.db,
            Metric::Euclidean,
            opts,
            || Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        let s2 = measure(&w.queries, &mut clock, |c, q| {
            tree2.nearest(c, q);
        });
        println!(
            "{name:8} IQ-std: total={:7.3}s io={:7.3} cpu={:6.3} seeks={:6.1} blocks={:7.1}",
            s2.total, s2.io, s2.cpu, s2.seeks, s2.blocks
        );
        let mut clock = SimClock::new(cfg.disk, cfg.cpu);
        let xt = XTree::build(
            &w.db,
            Metric::Euclidean,
            XTreeOptions::default(),
            Box::new(MemDevice::new(8192)),
            Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        let sx = measure(&w.queries, &mut clock, |c, q| {
            xt.nearest(c, q);
        });
        println!(
            "{name:8} XT: total={:7.3}s io={:7.3} cpu={:6.3} seeks={:6.1} blocks={:7.1} pages={}",
            sx.total,
            sx.io,
            sx.cpu,
            sx.seeks,
            sx.blocks,
            xt.num_data_pages()
        );
    }
}
