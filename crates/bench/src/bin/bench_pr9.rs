//! PR 9 performance artifact: single-query page-scan throughput of the
//! batch SIMD kernels vs the PR 4 per-entry kernel (detected dispatch and
//! forced scalar), the multi-query amortization sweep (Q ∈ {1, 4, 16}),
//! and the parallel-build thread sweep on the coarsened work units.
//! Writes `BENCH_PR9.json`. `IQ_QUICK=1` shrinks the workload for CI
//! smoke tests.

fn main() {
    let quick = std::env::var("IQ_QUICK").map(|v| v == "1").unwrap_or(false);
    let json = iq_bench::kernels::run_pr9(quick);
    print!("{json}");
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    eprintln!("wrote BENCH_PR9.json");
}
