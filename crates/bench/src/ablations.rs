//! Ablations and extension experiments beyond the paper's figures:
//!
//! * [`knn_sweep`] — k-NN query cost vs `k` (the paper sketches the k-NN
//!   extension of its cost model in footnote 1; this measures the real
//!   thing on all methods),
//! * [`fractal_ablation`] — the cost model with the measured fractal
//!   dimension vs the uniformity assumption `D_F = d` (the knob eqs 13–15
//!   add),
//! * [`scheduler_ablation`] — seeks and time with/without the
//!   time-optimized page access strategy across data distributions,
//! * [`model_validation`] — the optimizer's *predicted* query cost (the
//!   quantity it minimizes) against the measured simulated I/O time, per
//!   data distribution — the calibration the optimality proof is worth
//!   exactly as much as,
//! * [`minkowski_comparison`] — the paper's eq 12 geometric-mean
//!   approximation against the exact Steiner formula used in this
//!   implementation, across page shapes.

use crate::{measure, Config, DataKind, Table};
use iq_cost::refine::RefineParams;
use iq_geometry::{volume, Metric};
use iq_storage::{MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use iq_vafile::VaFile;
use iq_xtree::{XTree, XTreeOptions};

fn dev(cfg: &Config) -> Box<MemDevice> {
    Box::new(MemDevice::new(cfg.disk.block_size))
}

/// k-NN cost vs `k` on 16-d uniform data: IQ-tree, X-tree, VA-file.
pub fn knn_sweep(cfg: &Config) -> Table {
    let n = cfg.scaled(100_000);
    let w = DataKind::Uniform.workload(16, n, cfg.queries, cfg.seed);
    let mut t = Table::new(
        &format!("Extension - k-NN cost vs k (UNIFORM, 16 dims, {n} points, simulated s)"),
        "k",
        &["IQ-tree", "X-tree", "VA-file(5)"],
    );
    let mut clock = SimClock::new(cfg.disk, cfg.cpu);
    let iq = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(cfg),
        &mut clock,
    );
    let xt = XTree::build(
        &w.db,
        Metric::Euclidean,
        XTreeOptions::default(),
        dev(cfg),
        dev(cfg),
        &mut clock,
    );
    let va = VaFile::build(&w.db, Metric::Euclidean, 5, dev(cfg), dev(cfg), &mut clock);
    for k in [1usize, 5, 10, 20, 50, 100] {
        let a = measure(&w.queries, &mut clock, |c, q| {
            iq.knn(c, q, k);
        });
        let b = measure(&w.queries, &mut clock, |c, q| {
            xt.knn(c, q, k);
        });
        let c_ = measure(&w.queries, &mut clock, |c, q| {
            va.knn(c, q, k);
        });
        t.push_row(k, vec![a.total, b.total, c_.total]);
    }
    t
}

/// IQ-tree with the estimated fractal dimension vs the uniformity
/// assumption, on the three clustered analogues.
pub fn fractal_ablation(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Ablation - fractal correction (avg NN total time, simulated s)",
        "dataset",
        &["df=estimated", "df=d (uniform assumption)"],
    );
    for (name, kind, dim) in [
        ("cad16", DataKind::Cad, 16),
        ("color16", DataKind::Color, 16),
        ("weather9", DataKind::Weather, 9),
    ] {
        let n = cfg.scaled(100_000);
        let w = kind.workload(dim, n, cfg.queries, cfg.seed);
        let est = crate::run_iqtree(cfg, &w, IqTreeOptions::default()).total;
        let uni = crate::run_iqtree(
            cfg,
            &w,
            IqTreeOptions {
                fractal_dim: Some(dim as f64),
                ..Default::default()
            },
        )
        .total;
        t.push_row(name, vec![est, uni]);
    }
    t
}

/// Seeks with/without the time-optimized access strategy (the concept the
/// cost-balance algorithm exists for).
pub fn scheduler_ablation(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Ablation - page scheduler (avg per NN query)",
        "dataset",
        &["opt seeks", "std seeks", "opt time", "std time"],
    );
    for (name, kind, dim) in [
        ("uniform16", DataKind::Uniform, 16),
        ("cad16", DataKind::Cad, 16),
        ("weather9", DataKind::Weather, 9),
    ] {
        let n = cfg.scaled(100_000);
        let w = kind.workload(dim, n, cfg.queries, cfg.seed);
        let opt = crate::run_iqtree(cfg, &w, IqTreeOptions::default());
        let std = crate::run_iqtree(
            cfg,
            &w,
            IqTreeOptions {
                scheduled_io: false,
                ..Default::default()
            },
        );
        t.push_row(name, vec![opt.seeks, std.seeks, opt.total, std.total]);
    }
    t
}

/// Optimizer-predicted cost (model) vs measured simulated I/O per query.
pub fn model_validation(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Validation - cost model prediction vs measured I/O (simulated s)",
        "dataset",
        &["predicted", "measured-io", "ratio"],
    );
    for (name, kind, dim) in [
        ("uniform16", DataKind::Uniform, 16),
        ("cad16", DataKind::Cad, 16),
        ("color16", DataKind::Color, 16),
        ("weather9", DataKind::Weather, 9),
    ] {
        let n = cfg.scaled(100_000);
        let w = kind.workload(dim, n, cfg.queries, cfg.seed);
        let df = crate::estimate_fractal(&w.db);
        let mut clock = SimClock::new(cfg.disk, cfg.cpu);
        let opts = IqTreeOptions {
            fractal_dim: Some(df),
            ..Default::default()
        };
        let tree = IqTree::build(&w.db, Metric::Euclidean, opts, || dev(cfg), &mut clock);
        let predicted = tree.optimize_trace().cost_per_step[tree.optimize_trace().best_step];
        let s = measure(&w.queries, &mut clock, |c, q| {
            tree.nearest(c, q);
        });
        t.push_row(name, vec![predicted, s.io, s.io / predicted]);
    }
    t
}

/// The paper's eq 12 (geometric-mean cube) vs the exact Steiner Minkowski
/// sum, for elongated page shapes: relative volume error of the
/// approximation.
pub fn minkowski_comparison(_cfg: &Config) -> Table {
    let mut t = Table::new(
        "Ablation - eq 12 approximation vs exact Minkowski sum (relative error)",
        "aspect",
        &["d=4", "d=8", "d=16"],
    );
    // Page shapes from cubic to strongly elongated: side_i = base * f^i,
    // normalized to constant volume.
    for aspect in [1.0f64, 2.0, 4.0, 8.0] {
        let mut row = Vec::new();
        for d in [4usize, 8, 16] {
            let f = aspect.powf(1.0 / (d as f64 - 1.0));
            let mut sides: Vec<f64> = (0..d).map(|i| f.powi(i as i32)).collect();
            let vol: f64 = sides.iter().product();
            let norm = (0.2f64.powi(d as i32) / vol).powf(1.0 / d as f64);
            for s in &mut sides {
                *s *= norm;
            }
            let sides_f32: Vec<f32> = sides.iter().map(|&s| s as f32).collect();
            let r = 0.1;
            let exact = volume::minkowski_box_ball_eucl_exact(&sides_f32, r);
            let a = sides.iter().map(|s| s.ln()).sum::<f64>() / d as f64;
            let approx = volume::minkowski_box_ball_eucl_approx(d, a.exp(), r);
            row.push((approx - exact).abs() / exact);
        }
        t.push_row(format!("{aspect}x"), row);
    }
    t
}

/// Block-size sweep: the disk page size is the one hardware knob the
/// paper's evaluation holds fixed (8 KiB here). Larger blocks favor
/// scan-like access, smaller ones favor selectivity; the IQ-tree's
/// optimizer re-balances around it.
pub fn block_size_sweep(cfg: &Config) -> Table {
    let n = cfg.scaled(100_000);
    let dim = 16;
    let mut t = Table::new(
        &format!("Extension - block-size sweep (UNIFORM, {dim} dims, {n} points)"),
        "block",
        &["IQ-tree", "VA-file(5)", "Scan"],
    );
    for bs in [2048usize, 4096, 8192, 16384, 32768] {
        let disk = iq_storage::DiskModel {
            block_size: bs,
            // Transfer time scales with the block size (same MB/s).
            t_xfer: cfg.disk.t_xfer * bs as f64 / cfg.disk.block_size as f64,
            ..cfg.disk
        };
        let sub = Config { disk, ..*cfg };
        let w = DataKind::Uniform.workload(dim, n, cfg.queries, cfg.seed);
        let iq = crate::run_iqtree(&sub, &w, IqTreeOptions::default()).total;
        let va = crate::run_vafile(&sub, &w, 5).total;
        let sc = crate::run_scan(&sub, &w).total;
        t.push_row(bs, vec![iq, va, sc]);
    }
    t
}

/// Model-chosen VA-file resolution vs the paper's manual sweep: the
/// paper's Section 4.2 tunes the VA-file by hand and notes the IQ-tree's
/// "automatic adaptation" as a main advantage — here the IQ cost model is
/// pointed at the VA-file itself.
pub fn va_auto_ablation(cfg: &Config) -> Table {
    let mut t = Table::new(
        "Extension - model-chosen VA-file bits vs manual sweep (avg NN total time, simulated s)",
        "dataset",
        &["auto-bits", "auto-time", "swept-bits", "swept-time"],
    );
    for (name, kind, dim) in [
        ("uniform16", DataKind::Uniform, 16),
        ("cad16", DataKind::Cad, 16),
        ("color16", DataKind::Color, 16),
        ("weather9", DataKind::Weather, 9),
    ] {
        let n = cfg.scaled(100_000);
        let w = kind.workload(dim, n, cfg.queries, cfg.seed);
        let df = crate::estimate_fractal(&w.db);
        let auto = iq_vafile::auto_bits(&cfg.disk, &cfg.cpu, &w.db, df);
        let auto_stats = crate::run_vafile(cfg, &w, auto.clamp(1, 16));
        let (swept, swept_stats) = crate::run_vafile_best(cfg, &w);
        t.push_row(
            name,
            vec![
                f64::from(auto),
                auto_stats.total,
                f64::from(swept),
                swept_stats.total,
            ],
        );
    }
    t
}

/// Warm-cache ablation: repeated queries against an IQ-tree whose three
/// files sit behind an LRU buffer pool of the given size (fraction of the
/// total index footprint), vs the paper's cold-cache default.
pub fn cache_ablation(cfg: &Config) -> Table {
    use iq_cache::CachedDevice;
    let n = cfg.scaled(100_000);
    let dim = 16;
    let w = DataKind::Uniform.workload(dim, n, cfg.queries, cfg.seed);
    let mut t = Table::new(
        &format!("Extension - warm LRU buffer pool (UNIFORM, {dim} dims, {n} points)"),
        "pool",
        &["avg total", "avg io"],
    );
    for (label, frac) in [("cold", 0.0f64), ("10%", 0.1), ("50%", 0.5), ("100%", 1.0)] {
        let mut clock = SimClock::new(cfg.disk, cfg.cpu);
        // Rough footprint: quantized level dominates reads.
        let footprint_blocks = (n * (4 + 2 * dim)) / cfg.disk.block_size + 64;
        let cap = ((footprint_blocks as f64 * frac) as usize).max(1);
        let tree = IqTree::build(
            &w.db,
            Metric::Euclidean,
            IqTreeOptions::default(),
            || {
                let inner = Box::new(MemDevice::new(cfg.disk.block_size));
                if frac > 0.0 {
                    Box::new(CachedDevice::new(inner, cap))
                } else {
                    inner
                }
            },
            &mut clock,
        );
        // Warm up with one pass, then measure a second pass over the same
        // queries (the regime a buffer pool exists for).
        for q in w.queries.iter() {
            tree.nearest(&mut clock, q);
        }
        let s = measure(&w.queries, &mut clock, |c, q| {
            tree.nearest(c, q);
        });
        t.push_row(label, vec![s.total, s.io]);
    }
    t
}

/// Fractal-dimension sweep: the same N and embedding dimension, varying
/// only the intrinsic dimension of an embedded manifold. Probes the cost
/// model's adaptivity claim: the IQ-tree should get *cheaper* as the data
/// concentrates, and its chosen resolutions should shift.
///
/// Note the `est-Df` column saturates for high intrinsic dimensions: a
/// box-counting estimator can only resolve `D_F ≲ log₂(N²)/(2·g)` at grid
/// level `g`, and smooth embeddings look low-dimensional at coarse scales.
/// This is a property of correlation-dimension estimation itself (cf.
/// Belussi/Faloutsos), not of the generator.
pub fn fractal_sweep(cfg: &Config) -> Table {
    let n = cfg.scaled(100_000);
    let dim = 12;
    let mut t = Table::new(
        &format!("Extension - intrinsic-dimension sweep (manifold in {dim}-d, {n} points)"),
        "intrinsic",
        &["est-Df", "IQ-tree", "X-tree", "Scan"],
    );
    for intrinsic in [2usize, 4, 6, 9, 12] {
        let w = iq_data::Workload::generate(n, cfg.queries, |total| {
            iq_data::manifold(dim, intrinsic, total, 0.005, cfg.seed)
        });
        let df = crate::estimate_fractal(&w.db);
        let iq = crate::run_iqtree(
            cfg,
            &w,
            IqTreeOptions {
                fractal_dim: Some(df),
                ..Default::default()
            },
        )
        .total;
        let xt = crate::run_xtree(cfg, &w).total;
        let sc = crate::run_scan(cfg, &w).total;
        t.push_row(intrinsic, vec![df, iq, xt, sc]);
    }
    t
}

/// A k-NN model check: measured refinements grow with k roughly as the
/// footnote-1 extension predicts.
pub fn knn_model_check(cfg: &Config) -> Table {
    let n = cfg.scaled(50_000);
    let dim = 8;
    let w = DataKind::Uniform.workload(dim, n, cfg.queries, cfg.seed);
    let params = RefineParams::uniform(Metric::Euclidean, dim, n);
    let mut t = Table::new(
        "Validation - k-NN radius model (predicted radius vs measured k-NN distance)",
        "k",
        &["predicted", "measured"],
    );
    let mut clock = SimClock::new(cfg.disk, cfg.cpu);
    let tree = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(cfg),
        &mut clock,
    );
    // Global "page": the whole data space.
    let sides = vec![1.0f32; dim];
    for k in [1usize, 5, 10, 50] {
        let predicted = params.knn_radius(&sides, n, k);
        let mut measured = 0.0;
        for q in w.queries.iter() {
            let knn = tree.knn(&mut clock, q, k);
            measured += knn.last().expect("k results").1;
        }
        measured /= w.queries.len() as f64;
        t.push_row(k, vec![predicted, measured]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        let mut c = Config::tiny();
        c.queries = 3;
        c.scale_div = 20; // 5k points
        c
    }

    #[test]
    fn minkowski_comparison_error_grows_with_aspect() {
        let t = minkowski_comparison(&tiny());
        // Cubic pages: eq 12 is exact (error ~ 0).
        assert!(t.rows[0].1.iter().all(|&e| e < 1e-5), "{:?}", t.rows[0]);
        // Elongated pages: the approximation drifts.
        let last = &t.rows.last().expect("rows").1;
        assert!(last.iter().any(|&e| e > 1e-3), "{last:?}");
    }

    #[test]
    fn block_size_sweep_runs_and_scan_flat() {
        let mut cfg = tiny();
        cfg.scale_div = 20;
        let t = block_size_sweep(&cfg);
        assert_eq!(t.rows.len(), 5);
        // At constant MB/s the scan cost is nearly block-size independent.
        let scans: Vec<f64> = t.rows.iter().map(|(_, v)| v[2]).collect();
        let (lo, hi) = (
            scans.iter().cloned().fold(f64::INFINITY, f64::min),
            scans.iter().cloned().fold(0.0, f64::max),
        );
        assert!(hi / lo < 1.3, "{scans:?}");
    }

    #[test]
    fn va_auto_never_catastrophic() {
        let mut cfg = tiny();
        cfg.scale_div = 10;
        let t = va_auto_ablation(&cfg);
        for (name, vals) in &t.rows {
            let (auto_time, swept_time) = (vals[1], vals[3]);
            assert!(
                auto_time <= 2.0 * swept_time,
                "{name}: auto {auto_time} vs swept {swept_time}"
            );
        }
    }

    #[test]
    fn cache_ablation_full_pool_eliminates_io() {
        let mut cfg = tiny();
        cfg.scale_div = 20; // 5k points
        let t = cache_ablation(&cfg);
        let cold_io = t.rows[0].1[1];
        let full_io = t.rows.last().expect("rows").1[1];
        assert!(cold_io > 0.0);
        assert!(
            full_io < 0.05 * cold_io,
            "full pool must serve repeats from memory: {full_io} vs {cold_io}"
        );
    }

    #[test]
    fn fractal_sweep_iq_cheaper_on_low_intrinsic() {
        let mut cfg = tiny();
        cfg.scale_div = 10; // 10k points
        let t = fractal_sweep(&cfg);
        let first = &t.rows.first().expect("rows").1;
        let mid = &t.rows[2].1; // intrinsic 6: still within estimator range
        let last = &t.rows.last().expect("rows").1;
        // Estimated Df tracks the intrinsic dimension while resolvable.
        assert!(first[0] < mid[0], "{first:?} vs {mid:?}");
        // IQ query cost is lower on the concentrated set.
        assert!(first[1] < last[1], "{first:?} vs {last:?}");
    }

    #[test]
    fn knn_sweep_monotone_in_k() {
        let t = knn_sweep(&tiny());
        for col in 0..3 {
            let vals: Vec<f64> = t.rows.iter().map(|(_, v)| v[col]).collect();
            assert!(
                vals.last().expect("rows") >= vals.first().expect("rows"),
                "column {col}: {vals:?}"
            );
        }
    }

    #[test]
    fn knn_model_radius_within_factor_two() {
        let t = knn_model_check(&tiny());
        for (k, vals) in &t.rows {
            let (pred, meas) = (vals[0], vals[1]);
            assert!(
                pred / meas < 2.0 && meas / pred < 2.0,
                "k={k}: predicted {pred} vs measured {meas}"
            );
        }
    }
}
