//! Recall@k vs simulated-time speedup curves for the approximate k-NN
//! knobs ([`QueryOptions`]): ε-termination, `nprobes` truncation and
//! `refine_factor` capping, swept per engine against that engine's own
//! exact search on one clustered synthetic workload. The `recommended`
//! row is the measured sweet spot (highest speedup at recall ≥ 0.95,
//! falling back to ≥ 0.9) and is what CI's recall-smoke job asserts on.

use crate::{estimate_fractal, Config};
use iq_data::Workload;
use iq_engine::{AccessMethod, QueryOptions};
use iq_geometry::Metric;
use iq_tree::{IqTree, IqTreeOptions};
use iq_vafile::VaFile;
use iq_xtree::{XTree, XTreeOptions};
use std::collections::HashSet;

const K: usize = 10;
const N: usize = 10_000;
const DIM: usize = 16;

/// One measured setting of one knob on one engine.
#[derive(Clone, Debug)]
pub struct CurvePoint {
    /// Knob value (ε, nprobes or refine_factor, as a float for JSON).
    pub value: f64,
    /// Mean fraction of the true 10-NN ids returned.
    pub recall: f64,
    /// Mean simulated milliseconds per query.
    pub ms_per_query: f64,
    /// Exact-search time of the same engine divided by this time.
    pub speedup: f64,
    /// Fraction of queries that terminated early.
    pub early_frac: f64,
    /// Mean candidates skipped per query by the knob.
    pub skipped_per_query: f64,
}

/// All curves of one engine.
#[derive(Clone, Debug)]
pub struct EngineCurves {
    pub engine: &'static str,
    pub exact_ms: f64,
    /// `(knob name, points)` in sweep order.
    pub curves: Vec<(&'static str, Vec<CurvePoint>)>,
}

fn ground_truth(w: &Workload, metric: Metric) -> Vec<HashSet<u32>> {
    w.queries
        .iter()
        .map(|q| {
            let mut all: Vec<(u32, f64)> = (0..w.db.len())
                .map(|i| (i as u32, metric.distance(w.db.point(i), q)))
                .collect();
            all.sort_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .expect("no NaN distances")
                    .then(a.0.cmp(&b.0))
            });
            all.iter().take(K).map(|&(id, _)| id).collect()
        })
        .collect()
}

fn sweep_setting(
    cfg: &Config,
    eng: &dyn AccessMethod,
    w: &Workload,
    truth: &[HashSet<u32>],
    opts: &QueryOptions,
) -> (f64, f64, f64, f64) {
    let mut clock = cfg.clock();
    let (mut total, mut recall, mut early, mut skipped) = (0.0, 0.0, 0.0, 0.0);
    for (q, want) in w.queries.iter().zip(truth) {
        clock.reset();
        let (hits, trace) = eng.knn_opts_traced(&mut clock, q, K, None, opts);
        total += clock.total_time();
        let got: HashSet<u32> = hits.iter().map(|&(id, _)| id).collect();
        recall += want.intersection(&got).count() as f64 / K as f64;
        early += trace.terminated_early as f64;
        skipped += trace.candidates_skipped as f64;
    }
    let nq = w.queries.len() as f64;
    (total / nq * 1e3, recall / nq, early / nq, skipped / nq)
}

fn run_engine(
    cfg: &Config,
    eng: &dyn AccessMethod,
    name: &'static str,
    w: &Workload,
    truth: &[HashSet<u32>],
) -> EngineCurves {
    let (exact_ms, exact_recall, _, _) = sweep_setting(cfg, eng, w, truth, &QueryOptions::EXACT);
    assert!(
        exact_recall > 0.999,
        "{name}: exact search must have recall 1.0, got {exact_recall}"
    );
    let mut curves = Vec::new();
    let point = |opts: &QueryOptions, value: f64| -> CurvePoint {
        let (ms, recall, early_frac, skipped_per_query) = sweep_setting(cfg, eng, w, truth, opts);
        CurvePoint {
            value,
            recall,
            ms_per_query: ms,
            speedup: exact_ms / ms.max(1e-12),
            early_frac,
            skipped_per_query,
        }
    };
    let eps_curve: Vec<CurvePoint> = [0.1, 0.25, 0.5, 1.0, 2.0]
        .iter()
        .map(|&eps| {
            point(
                &QueryOptions {
                    epsilon: eps,
                    ..QueryOptions::EXACT
                },
                eps,
            )
        })
        .collect();
    curves.push(("epsilon", eps_curve));
    let np_curve: Vec<CurvePoint> = [1u64, 2, 4, 8, 16, 32]
        .iter()
        .map(|&np| {
            point(
                &QueryOptions {
                    nprobes: Some(np),
                    ..QueryOptions::EXACT
                },
                np as f64,
            )
        })
        .collect();
    curves.push(("nprobes", np_curve));
    let rf_curve: Vec<CurvePoint> = [2u32, 4, 8]
        .iter()
        .map(|&rf| {
            point(
                &QueryOptions {
                    refine_factor: rf,
                    ..QueryOptions::EXACT
                },
                f64::from(rf),
            )
        })
        .collect();
    curves.push(("refine_factor", rf_curve));
    // Combined sweep: nprobes truncation with batched partial refinement
    // (refine_factor = 2) — the knobs attack different cost components
    // (filter I/O vs refinement seeks), so the product is where the
    // recall/speedup sweet spot lives. The point value is nprobes.
    let combo_curve: Vec<CurvePoint> = [2u64, 4, 8, 16]
        .iter()
        .map(|&np| {
            point(
                &QueryOptions {
                    nprobes: Some(np),
                    refine_factor: 2,
                    ..QueryOptions::EXACT
                },
                np as f64,
            )
        })
        .collect();
    curves.push(("nprobes_with_rf2", combo_curve));
    EngineCurves {
        engine: name,
        exact_ms,
        curves,
    }
}

/// Runs the full sweep and renders the `BENCH_PR8.json` report.
pub fn run_pr8(quick: bool) -> String {
    run_with(&Config::from_env(), quick, N)
}

fn run_with(cfg: &Config, quick: bool, n: usize) -> String {
    let w = crate::DataKind::Cad.workload(DIM, n, cfg.queries, cfg.seed);
    let metric = Metric::Euclidean;
    let truth = ground_truth(&w, metric);

    let mut clock = cfg.clock();
    let iq = IqTree::build(
        &w.db,
        metric,
        IqTreeOptions {
            fractal_dim: Some(estimate_fractal(&w.db)),
            ..Default::default()
        },
        || cfg.make_dev(),
        &mut clock,
    );
    let xt = XTree::build(
        &w.db,
        metric,
        XTreeOptions::default(),
        cfg.make_dev(),
        cfg.make_dev(),
        &mut clock,
    );
    let va = VaFile::build(&w.db, metric, 8, cfg.make_dev(), cfg.make_dev(), &mut clock);

    let engines: Vec<EngineCurves> = vec![
        run_engine(cfg, &iq, "iqtree", &w, &truth),
        run_engine(cfg, &xt, "xtree", &w, &truth),
        run_engine(cfg, &va, "vafile", &w, &truth),
    ];

    // The recommended setting: highest speedup among IQ-tree points with
    // recall >= 0.95, falling back to >= 0.9.
    let iq_curves = &engines[0];
    let mut best: Option<(&'static str, &CurvePoint)> = None;
    for floor in [0.95, 0.9] {
        for (knob, points) in &iq_curves.curves {
            for p in points {
                if p.recall >= floor && best.is_none_or(|(_, b)| p.speedup > b.speedup) {
                    best = Some((*knob, p));
                }
            }
        }
        if best.is_some() {
            break;
        }
    }
    let (rec_knob, rec) = best.expect("some setting reaches the recall floor");

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"approximate knn recall vs speedup\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"n\": {n}, \"dim\": {DIM}, \"k\": {K}, \"queries\": {}, \"dataset\": \"cad\",\n",
        cfg.queries
    ));
    json.push_str("  \"engines\": [\n");
    for (ei, e) in engines.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"engine\": \"{}\", \"exact_ms_per_query\": {:.6}, \"curves\": [\n",
            e.engine, e.exact_ms
        ));
        for (ci, (knob, points)) in e.curves.iter().enumerate() {
            json.push_str(&format!("      {{\"knob\": \"{knob}\", \"points\": [\n"));
            for (pi, p) in points.iter().enumerate() {
                let sep = if pi + 1 == points.len() { "" } else { "," };
                json.push_str(&format!(
                    "        {{\"value\": {}, \"recall_at_10\": {:.4}, \"ms_per_query\": {:.6}, \
                     \"speedup\": {:.3}, \"terminated_early_frac\": {:.3}, \
                     \"candidates_skipped_per_query\": {:.1}}}{sep}\n",
                    p.value, p.recall, p.ms_per_query, p.speedup, p.early_frac, p.skipped_per_query
                ));
            }
            let sep = if ci + 1 == e.curves.len() { "" } else { "," };
            json.push_str(&format!("      ]}}{sep}\n"));
        }
        let sep = if ei + 1 == engines.len() { "" } else { "," };
        json.push_str(&format!("    ]}}{sep}\n"));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"recommended\": {{\"engine\": \"iqtree\", \"knob\": \"{rec_knob}\", \
         \"value\": {}, \"recall_at_10\": {:.4}, \"speedup\": {:.3}}},\n",
        rec.value, rec.recall, rec.speedup
    ));
    json.push_str(
        "  \"note\": \"speedup is each engine's exact simulated time divided by its \
         approximate time on the same workload; recall is id-overlap with the \
         brute-force 10-NN\"\n",
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use crate::Config;

    #[test]
    fn tiny_report_is_wellformed_and_covers_all_engines() {
        let json = super::run_with(&Config::tiny(), true, 2_000);
        assert!(json.contains("\"recommended\""));
        assert!(json.contains("\"engine\": \"iqtree\""));
        assert!(json.contains("\"engine\": \"vafile\""));
        assert!(json.contains("\"engine\": \"xtree\""));
        assert!(json.contains("\"knob\": \"epsilon\""));
        assert!(json.contains("\"knob\": \"nprobes\""));
        assert!(json.contains("\"knob\": \"refine_factor\""));
    }
}
