//! Microbenchmarks for the quantized-domain distance kernels: page-scan
//! filter throughput (naive decode-then-`Metric` vs the lookup-table
//! kernel), `DistTable` build cost, and the parallel build pipeline
//! speedup. [`run_all`] renders everything as JSON; the `kernels` binary
//! writes it to `BENCH_PR4.json`.
//!
//! These measure *wall-clock* time of the CPU kernels (unlike the figure
//! runners, which report simulated time): the kernels change how fast the
//! same answers are produced, and the simulated cost model charges both
//! paths identically.

use iq_geometry::{Mbr, Metric};
use iq_obs::Registry;
use iq_quantize::{
    kernel_name, set_kernel_override, DistTable, DistTableBlock, ExactPageCodec, GridQuantizer,
    Kernel, QuantizedPageCodec,
};
use iq_storage::{BlockDevice, MemDevice, ObservedDevice, SimClock};
use iq_tree::build::{encode_pages, SolutionPage};
use std::time::Instant;

/// Deterministic pseudo-uniform values in `[0, 1)` (no RNG state shared
/// with the figure runners).
fn lcg(seed: &mut u64) -> f32 {
    *seed = seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
    ((*seed >> 33) as f64 / f64::from(1u32 << 31)) as f32
}

/// Throughput of the level-2 filter over encoded pages, points per second.
#[derive(Clone, Copy, Debug)]
pub struct ScanBench {
    /// Points filtered per second by the naive path (full page decode,
    /// per-entry `cell_box` MBR construction, `Metric::mindist_key`).
    pub naive_pps: f64,
    /// Points filtered per second by the kernel (zero-copy view, streaming
    /// decode, table-lookup MINDIST).
    pub kernel_pps: f64,
    /// `kernel_pps / naive_pps`.
    pub speedup: f64,
}

/// Measures the page-scan filter: identical pages, identical queries,
/// identical keys out of both paths (asserted) — only the kernel differs.
pub fn page_scan_throughput(quick: bool) -> ScanBench {
    const DIM: usize = 8;
    const G: u32 = 6;
    const BLOCK: usize = 4096;
    let codec = QuantizedPageCodec::new(DIM, BLOCK);
    let per_page = codec.capacity(G).min(200);
    let n_pages = if quick { 8 } else { 64 };
    let n_queries = if quick { 2 } else { 8 };
    let iters = if quick { 1 } else { 6 };

    let mut seed = 0xD15_7AB1Eu64;
    let pages: Vec<(Mbr, Vec<u8>)> = (0..n_pages)
        .map(|p| {
            let base = p as f32 * 0.01;
            let pts: Vec<Vec<f32>> = (0..per_page)
                .map(|_| (0..DIM).map(|_| base + lcg(&mut seed)).collect())
                .collect();
            let mbr = Mbr::of_points(DIM, pts.iter().map(Vec::as_slice));
            let block = codec.encode(
                &mbr,
                G,
                pts.iter()
                    .enumerate()
                    .map(|(i, v)| (i as u32, v.as_slice())),
            );
            (mbr, block)
        })
        .collect();
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| (0..DIM).map(|_| lcg(&mut seed) * 1.5).collect())
        .collect();

    // Naive: decode the page into vectors, build each entry's cell box,
    // run the metric over it.
    let start = Instant::now();
    let mut naive_sink = 0.0f64;
    for _ in 0..iters {
        for q in &queries {
            for (mbr, block) in &pages {
                let page = codec.try_decode(block).expect("valid page");
                let grid = GridQuantizer::new(mbr, page.bits());
                for i in 0..page.len() {
                    naive_sink += Metric::Euclidean.mindist_key(q, &grid.cell_box(page.cells(i)));
                }
            }
        }
    }
    let naive_t = start.elapsed().as_secs_f64();

    // Kernel: per-(query, page) table, streaming decode, lookups.
    let mut table = DistTable::new();
    let mut scratch: Vec<u32> = Vec::new();
    let start = Instant::now();
    let mut kernel_sink = 0.0f64;
    for _ in 0..iters {
        for q in &queries {
            for (mbr, block) in &pages {
                let view = codec.try_view(block).expect("valid page");
                table.build(mbr, view.bits(), Metric::Euclidean, q, view.len());
                view.for_each_entry(&mut scratch, |_, cells| {
                    kernel_sink += table.mindist_key(cells);
                });
            }
        }
    }
    let kernel_t = start.elapsed().as_secs_f64();

    // Same pages, same fold order: the sums are bit-identical.
    assert_eq!(
        naive_sink.to_bits(),
        kernel_sink.to_bits(),
        "kernel must not change the keys"
    );

    let points = (iters * n_queries * n_pages * per_page) as f64;
    let naive_pps = points / naive_t.max(1e-12);
    let kernel_pps = points / kernel_t.max(1e-12);
    ScanBench {
        naive_pps,
        kernel_pps,
        speedup: kernel_pps / naive_pps.max(1e-12),
    }
}

/// Cost of building one `DistTable` (nanoseconds), per `(dim, g)`.
pub fn table_build_cost(quick: bool) -> Vec<(usize, u32, f64)> {
    let iters = if quick { 20 } else { 2_000 };
    let mut out = Vec::new();
    let mut seed = 0xBEEFu64;
    for &dim in &[8usize, 16] {
        let lo: Vec<f32> = (0..dim).map(|_| lcg(&mut seed)).collect();
        let hi: Vec<f32> = lo.iter().map(|l| l + 1.0).collect();
        let mbr = Mbr::from_bounds(lo, hi);
        let q: Vec<f32> = (0..dim).map(|_| lcg(&mut seed) * 2.0).collect();
        for &g in &[4u32, 8] {
            let mut table = DistTable::new();
            // Hint large enough to force materialization: the build cost is
            // what we're measuring.
            table.build(&mbr, g, Metric::Euclidean, &q, 1 << 20);
            let start = Instant::now();
            for _ in 0..iters {
                table.build(&mbr, g, Metric::Euclidean, &q, 1 << 20);
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            out.push((dim, g, ns));
        }
    }
    out
}

/// Wall-clock speedup of the parallel page-encoding pipeline.
#[derive(Clone, Copy, Debug)]
pub struct BuildBench {
    /// Worker threads used for the parallel run.
    pub threads: usize,
    /// Sequential encode time, seconds.
    pub seq_s: f64,
    /// Parallel encode time, seconds.
    pub par_s: f64,
    /// `seq_s / par_s`.
    pub speedup: f64,
}

/// The synthetic encode workload shared by the parallel-build benchmarks.
fn build_workload(quick: bool) -> (iq_geometry::Dataset, Vec<SolutionPage>) {
    const DIM: usize = 12;
    const G: u32 = 8;
    let n_pages = if quick { 32 } else { 256 };
    let per_page = 120usize;
    let mut seed = 0xC0FFEEu64;
    let mut ds = iq_geometry::Dataset::with_capacity(DIM, n_pages * per_page);
    let mut row = vec![0.0f32; DIM];
    for _ in 0..n_pages * per_page {
        row.fill_with(|| lcg(&mut seed));
        ds.push(&row);
    }
    let solution: Vec<SolutionPage> = (0..n_pages)
        .map(|p| {
            let ids: Vec<u32> = (p * per_page..(p + 1) * per_page)
                .map(|i| i as u32)
                .collect();
            let mbr = Mbr::of_points(DIM, ids.iter().map(|&i| ds.point(i as usize)));
            SolutionPage { ids, mbr, g: G }
        })
        .collect();
    (ds, solution)
}

/// Encodes the same solution with 1 thread and with 8 explicit workers,
/// verifying byte-for-byte identity along the way.
///
/// The worker count is pinned, not taken from `available_parallelism()`:
/// on a single-core machine that call returns 1, which silently turns the
/// "parallel" run into a second sequential run and makes the reported
/// speedup meaningless (an old run recorded `threads: 1, speedup: 0.891`
/// this way). Eight workers are spawned regardless; on few cores the
/// honest answer is a speedup near (or below) 1.0, and that is what gets
/// reported. See [`parallel_build_sweep`] for per-thread-count numbers.
pub fn parallel_build_speedup(quick: bool) -> BuildBench {
    const THREADS: usize = 8;
    let (ds, solution) = build_workload(quick);
    let codec = QuantizedPageCodec::new(12, 4096);
    let exact_codec = ExactPageCodec::new(12);

    // Warm-up run (page cache, lazy init).
    let _ = encode_pages(&ds, None, &solution, &codec, &exact_codec, 1);

    let start = Instant::now();
    let seq = encode_pages(&ds, None, &solution, &codec, &exact_codec, 1);
    let seq_s = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let par = encode_pages(&ds, None, &solution, &codec, &exact_codec, THREADS);
    let par_s = start.elapsed().as_secs_f64();

    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.quant, b.quant, "parallel encode must be deterministic");
        assert_eq!(a.exact, b.exact, "parallel encode must be deterministic");
    }

    BuildBench {
        threads: THREADS,
        seq_s,
        par_s,
        speedup: seq_s / par_s.max(1e-12),
    }
}

/// One measured run of the thread-count sweep.
#[derive(Clone, Copy, Debug)]
pub struct BuildRun {
    /// Worker threads actually spawned for this run.
    pub threads: usize,
    /// Encode time, seconds.
    pub par_s: f64,
    /// `sequential_s / par_s`.
    pub speedup: f64,
}

/// Per-thread-count timings of the parallel encode pipeline.
#[derive(Clone, Debug)]
pub struct BuildSweep {
    /// What `available_parallelism()` reports — recorded so a reader can
    /// tell real scaling from an oversubscribed single-core box.
    pub available_cores: usize,
    /// Sequential (1-worker fast path) encode time, seconds.
    pub sequential_s: f64,
    /// One run per entry of the thread sweep, every one actually spawning
    /// that many workers.
    pub runs: Vec<BuildRun>,
}

/// Times the page-encode pipeline at 1, 2, 4 and 8 explicitly spawned
/// workers against the sequential baseline, checking every run's output
/// byte-identical. Speedups are whatever the machine gives — near 1.0 (or
/// below, from thread overhead) on a single core — with
/// `available_cores` on record next to them.
pub fn parallel_build_sweep(quick: bool) -> BuildSweep {
    let (ds, solution) = build_workload(quick);
    let codec = QuantizedPageCodec::new(12, 4096);
    let exact_codec = ExactPageCodec::new(12);

    // Warm-up (page cache, lazy init).
    let _ = encode_pages(&ds, None, &solution, &codec, &exact_codec, 1);
    let start = Instant::now();
    let seq = encode_pages(&ds, None, &solution, &codec, &exact_codec, 1);
    let sequential_s = start.elapsed().as_secs_f64();

    let runs = [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            let start = Instant::now();
            // `encode_pages` treats `threads == 1` as the sequential fast
            // path and spawns `threads` scoped workers otherwise.
            let par = encode_pages(&ds, None, &solution, &codec, &exact_codec, threads);
            let par_s = start.elapsed().as_secs_f64();
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.quant, b.quant, "encode must be thread-count invariant");
                assert_eq!(a.exact, b.exact, "encode must be thread-count invariant");
            }
            BuildRun {
                threads,
                par_s,
                speedup: sequential_s / par_s.max(1e-12),
            }
        })
        .collect();

    BuildSweep {
        available_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        sequential_s,
        runs,
    }
}

/// Renders the parallel-build thread sweep as the `BENCH_PR6.json`
/// artifact (hand-formatted: the harness has no serde dependency).
pub fn run_pr6(quick: bool) -> String {
    let sweep = parallel_build_sweep(quick);
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"parallel build thread sweep\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"available_cores\": {},\n",
        sweep.available_cores
    ));
    json.push_str(&format!("  \"sequential_s\": {:.6},\n", sweep.sequential_s));
    json.push_str("  \"runs\": [\n");
    for (i, r) in sweep.runs.iter().enumerate() {
        let sep = if i + 1 == sweep.runs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"threads\": {}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{sep}\n",
            r.threads, r.par_s, r.speedup
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"workers are spawned explicitly per run; speedups near 1.0 are \
         expected when available_cores is small\"\n",
    );
    json.push_str("}\n");
    json
}

/// Cost of the observability layer, measured at both granularities that
/// matter: single metric updates (the per-op price every instrumented
/// call site pays) and block reads through an [`ObservedDevice`] (the
/// price an instrumented device stack adds per I/O).
#[derive(Clone, Copy, Debug)]
pub struct ObsBench {
    /// Counter update with a disabled registry, ns/op (one relaxed load).
    pub counter_disabled_ns: f64,
    /// Counter update with an enabled registry, ns/op.
    pub counter_enabled_ns: f64,
    /// Histogram observe with a disabled registry, ns/op.
    pub histogram_disabled_ns: f64,
    /// Histogram observe with an enabled registry, ns/op.
    pub histogram_enabled_ns: f64,
    /// Block read through a bare `MemDevice`, ns/read.
    pub read_plain_ns: f64,
    /// Same read through an `ObservedDevice` with a disabled registry.
    pub read_observed_off_ns: f64,
    /// Same read through an `ObservedDevice` with an enabled registry.
    pub read_observed_on_ns: f64,
    /// `read_observed_on_ns / read_plain_ns − 1`, in percent.
    pub enabled_read_overhead_pct: f64,
}

/// Measures metric-update and observed-read costs against their
/// uninstrumented baselines. Uses private per-case [`Registry`]
/// instances, so the process-global registry is untouched.
pub fn observability_overhead(quick: bool) -> ObsBench {
    let ops = if quick { 20_000u64 } else { 2_000_000 };
    let per_op = |registry: &Registry, f: &mut dyn FnMut(&Registry)| -> f64 {
        f(registry); // warm-up: resolve handles, touch the buckets
        let start = Instant::now();
        f(registry);
        start.elapsed().as_nanos() as f64 / ops as f64
    };

    let on = Registry::new();
    let off = Registry::disabled();
    let mut counter_loop = |reg: &Registry| {
        let c = reg.counter("bench_ops_total");
        for _ in 0..ops {
            c.inc();
        }
    };
    let counter_enabled_ns = per_op(&on, &mut counter_loop);
    let counter_disabled_ns = per_op(&off, &mut counter_loop);
    let mut histogram_loop = |reg: &Registry| {
        let h = reg.histogram("bench_seconds");
        let mut v = 1.0f64;
        for _ in 0..ops {
            h.observe(v);
            v = if v > 1e6 { 1.0 } else { v * 1.0000001 };
        }
    };
    let histogram_enabled_ns = per_op(&on, &mut histogram_loop);
    let histogram_disabled_ns = per_op(&off, &mut histogram_loop);

    // Block reads: the same MemDevice traffic bare and behind an
    // ObservedDevice, free simulated clock so only wall-time differs.
    let reads = if quick { 2_000u64 } else { 200_000 };
    const BLOCK: usize = 4096;
    let fill = |dev: &mut dyn BlockDevice| {
        let mut clock = SimClock::default();
        dev.append(&mut clock, &[7u8; BLOCK * 8]).expect("append");
    };
    let read_loop = |dev: &dyn BlockDevice| -> f64 {
        let mut clock = SimClock::default();
        let mut buf = [0u8; BLOCK];
        let mut spin = 0u64;
        let start = Instant::now();
        for i in 0..reads {
            dev.read_blocks(&mut clock, i % 8, &mut buf).expect("read");
            spin = spin.wrapping_add(u64::from(buf[0]));
        }
        assert_eq!(spin, reads.wrapping_mul(7));
        start.elapsed().as_nanos() as f64 / reads as f64
    };
    let mut plain = MemDevice::new(BLOCK);
    fill(&mut plain);
    let read_plain_ns = read_loop(&plain);
    let mut observed_off = ObservedDevice::new(Box::new(MemDevice::new(BLOCK)), &off, "bench");
    fill(&mut observed_off);
    let read_observed_off_ns = read_loop(&observed_off);
    let mut observed_on = ObservedDevice::new(Box::new(MemDevice::new(BLOCK)), &on, "bench");
    fill(&mut observed_on);
    let read_observed_on_ns = read_loop(&observed_on);

    ObsBench {
        counter_disabled_ns,
        counter_enabled_ns,
        histogram_disabled_ns,
        histogram_enabled_ns,
        read_plain_ns,
        read_observed_off_ns,
        read_observed_on_ns,
        enabled_read_overhead_pct: (read_observed_on_ns / read_plain_ns.max(1e-12) - 1.0) * 100.0,
    }
}

/// Runs every kernel microbenchmark and renders the results as a JSON
/// object (hand-formatted: the harness has no serde dependency).
pub fn run_all(quick: bool) -> String {
    let scan = page_scan_throughput(quick);
    let tables = table_build_cost(quick);
    let build = parallel_build_speedup(quick);
    let obs = observability_overhead(quick);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"quantized-domain distance kernels\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"page_scan\": {{\"naive_points_per_sec\": {:.0}, \"kernel_points_per_sec\": {:.0}, \"speedup\": {:.3}}},\n",
        scan.naive_pps, scan.kernel_pps, scan.speedup
    ));
    json.push_str("  \"table_build\": [\n");
    for (i, (dim, g, ns)) in tables.iter().enumerate() {
        let sep = if i + 1 == tables.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"dim\": {dim}, \"g\": {g}, \"ns_per_build\": {ns:.0}}}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel_build\": {{\"threads\": {}, \"sequential_s\": {:.6}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}},\n",
        build.threads, build.seq_s, build.par_s, build.speedup
    ));
    json.push_str(&format!(
        "  \"observability\": {{\"counter_disabled_ns\": {:.2}, \"counter_enabled_ns\": {:.2}, \
         \"histogram_disabled_ns\": {:.2}, \"histogram_enabled_ns\": {:.2}, \
         \"read_plain_ns\": {:.1}, \"read_observed_off_ns\": {:.1}, \"read_observed_on_ns\": {:.1}, \
         \"enabled_read_overhead_pct\": {:.2}}}\n",
        obs.counter_disabled_ns,
        obs.counter_enabled_ns,
        obs.histogram_disabled_ns,
        obs.histogram_enabled_ns,
        obs.read_plain_ns,
        obs.read_observed_off_ns,
        obs.read_observed_on_ns,
        obs.enabled_read_overhead_pct,
    ));
    json.push_str("}\n");
    json
}

/// Shared page-scan workload: the codec, entries per page, the encoded
/// pages (MBR + body), and the query points.
type ScanWorkload = (
    QuantizedPageCodec,
    usize,
    Vec<(Mbr, Vec<u8>)>,
    Vec<Vec<f32>>,
);

/// Builds the shared page-scan workload: `n_pages` encoded quantized
/// pages (DIM 8, g 6 — the PR 4 baseline shape) plus `n_queries` query
/// points.
fn scan_workload(n_pages: usize, n_queries: usize) -> ScanWorkload {
    const DIM: usize = 8;
    const G: u32 = 6;
    const BLOCK: usize = 4096;
    let codec = QuantizedPageCodec::new(DIM, BLOCK);
    let per_page = codec.capacity(G).min(200);
    let mut seed = 0x51AD_BEA7u64;
    let pages: Vec<(Mbr, Vec<u8>)> = (0..n_pages)
        .map(|p| {
            let base = p as f32 * 0.01;
            let pts: Vec<Vec<f32>> = (0..per_page)
                .map(|_| (0..DIM).map(|_| base + lcg(&mut seed)).collect())
                .collect();
            let mbr = Mbr::of_points(DIM, pts.iter().map(Vec::as_slice));
            let block = codec.encode(
                &mbr,
                G,
                pts.iter()
                    .enumerate()
                    .map(|(i, v)| (i as u32, v.as_slice())),
            );
            (mbr, block)
        })
        .collect();
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| (0..DIM).map(|_| lcg(&mut seed) * 1.5).collect())
        .collect();
    (codec, per_page, pages, queries)
}

/// Single-query page-scan filter: the PR 4 per-entry lookup kernel vs the
/// PR 9 batch kernel (whole-page decode + fold) under the detected SIMD
/// dispatch and under forced-scalar fallback. All three paths produce
/// bit-identical key sums (asserted).
#[derive(Clone, Copy, Debug)]
pub struct SimdScanBench {
    /// Selected SIMD dispatch tier (`avx2` / `sse41` / `scalar`).
    pub kernel: &'static str,
    /// Points per second through the PR 4 per-entry lookup kernel.
    pub pr4_pps: f64,
    /// Points per second through the batch kernel, detected dispatch.
    pub batch_pps: f64,
    /// Points per second through the batch kernel, forced scalar.
    pub batch_scalar_pps: f64,
    /// `batch_pps / pr4_pps`.
    pub simd_speedup: f64,
    /// `batch_scalar_pps / pr4_pps` — the no-SIMD safety net.
    pub scalar_ratio: f64,
}

/// Measures [`SimdScanBench`]: same pages, same queries, same fold order
/// in every path, so the accumulated key sums must match bit-for-bit.
pub fn page_scan_simd(quick: bool) -> SimdScanBench {
    let n_pages = if quick { 8 } else { 64 };
    let n_queries = if quick { 2 } else { 8 };
    let iters = if quick { 1 } else { 8 };
    // Best-of-N timing: each path runs `reps` full passes and reports the
    // fastest, which filters out scheduler noise on small machines. Every
    // pass accumulates into the same sink, so the cross-path bit-identity
    // assertion still compares identical addition sequences.
    let reps = if quick { 1 } else { 5 };
    let (codec, per_page, pages, queries) = scan_workload(n_pages, n_queries);

    // PR 4 kernel: per-(query, page) table, per-entry streaming lookups.
    let mut table = DistTable::new();
    let mut scratch: Vec<u32> = Vec::new();
    let mut pr4_sink = 0.0f64;
    let mut pr4_t = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            for q in &queries {
                for (mbr, block) in &pages {
                    let view = codec.try_view(block).expect("valid page");
                    table.build(mbr, view.bits(), Metric::Euclidean, q, view.len());
                    view.for_each_entry(&mut scratch, |_, cells| {
                        pr4_sink += table.mindist_key(cells);
                    });
                }
            }
        }
        pr4_t = pr4_t.min(start.elapsed().as_secs_f64());
    }

    let mut cells: Vec<u32> = Vec::new();
    let mut keys: Vec<f64> = Vec::new();
    let mut batch_pass = |sink: &mut f64| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for _ in 0..iters {
                for q in &queries {
                    for (mbr, block) in &pages {
                        let view = codec.try_view(block).expect("valid page");
                        table.build(mbr, view.bits(), Metric::Euclidean, q, view.len());
                        view.unpack_all(&mut cells);
                        table.mindist_keys(&cells, &mut keys);
                        for &k in &keys {
                            *sink += k;
                        }
                    }
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    // Batch kernel under whatever dispatch the CPU detection selected.
    let mut batch_sink = 0.0f64;
    let batch_t = batch_pass(&mut batch_sink);

    // Batch kernel pinned to the scalar fallback.
    set_kernel_override(Some(Kernel::Scalar));
    let mut scalar_sink = 0.0f64;
    let scalar_t = batch_pass(&mut scalar_sink);
    set_kernel_override(None);

    assert_eq!(
        pr4_sink.to_bits(),
        batch_sink.to_bits(),
        "batch kernel must not change the keys"
    );
    assert_eq!(
        pr4_sink.to_bits(),
        scalar_sink.to_bits(),
        "scalar fallback must not change the keys"
    );

    let points = (iters * n_queries * n_pages * per_page) as f64;
    let pr4_pps = points / pr4_t.max(1e-12);
    let batch_pps = points / batch_t.max(1e-12);
    let batch_scalar_pps = points / scalar_t.max(1e-12);
    SimdScanBench {
        kernel: kernel_name(),
        pr4_pps,
        batch_pps,
        batch_scalar_pps,
        simd_speedup: batch_pps / pr4_pps.max(1e-12),
        scalar_ratio: batch_scalar_pps / pr4_pps.max(1e-12),
    }
}

/// One batch size of the multi-query page-scan amortization sweep.
#[derive(Clone, Copy, Debug)]
pub struct MultiqRow {
    /// Queries evaluated per decoded page.
    pub q: usize,
    /// Nanoseconds per (point, query) evaluation — table build, page
    /// decode and bound folds all included.
    pub ns_per_point_query: f64,
    /// `ns(Q=1) / ns(Q)` — how much the shared decode buys.
    pub amortization: f64,
}

/// Multi-query page-scan sweep: evaluates the same total number of
/// (point, query) pairs at batch sizes Q ∈ {1, 4, 16} through
/// [`DistTableBlock`] + `for_each_entry_multi`, reporting the per-pair
/// cost. Larger Q shares the page decode (and loop overhead) across more
/// queries, so the per-pair cost should fall monotonically.
pub fn page_scan_multiq(quick: bool) -> Vec<MultiqRow> {
    let n_pages = if quick { 8 } else { 48 };
    let base_iters = if quick { 1 } else { 6 };
    let (codec, per_page, pages, queries) = scan_workload(n_pages, 16);

    let mut block_table = DistTableBlock::new();
    let mut cells: Vec<u32> = Vec::new();
    let mut lo: Vec<f64> = Vec::new();
    let mut hi: Vec<f64> = Vec::new();
    let mut rows: Vec<MultiqRow> = Vec::new();
    let mut base_ns = 0.0f64;
    for q in [1usize, 4, 16] {
        let qs: Vec<&[f32]> = queries[..q].iter().map(Vec::as_slice).collect();
        // Same total (point, query) work at every batch size; best-of-N
        // passes to filter scheduler noise.
        let iters = base_iters * (16 / q);
        let reps = if quick { 1 } else { 5 };
        let mut sink = 0.0f64;
        let mut t = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for _ in 0..iters {
                for (mbr, block) in &pages {
                    let view = codec.try_view(block).expect("valid page");
                    let ok =
                        block_table.build(mbr, view.bits(), Metric::Euclidean, &qs, view.len());
                    assert!(ok, "workload fits the materialization budget");
                    view.for_each_entry_multi(
                        &block_table,
                        &mut cells,
                        &mut lo,
                        &mut hi,
                        |_, _, lo, _| {
                            for &v in lo {
                                sink += v;
                            }
                        },
                    );
                }
            }
            t = t.min(start.elapsed().as_secs_f64());
        }
        assert!(sink.is_finite());
        let pairs = (iters * n_pages * per_page * q) as f64;
        let ns = t / pairs.max(1e-12) * 1e9;
        if q == 1 {
            base_ns = ns;
        }
        rows.push(MultiqRow {
            q,
            ns_per_point_query: ns,
            amortization: base_ns / ns.max(1e-12),
        });
    }
    rows
}

/// Runs the PR 9 suite — single-query SIMD vs scalar page scan,
/// multi-query amortization sweep, and the parallel-build thread sweep on
/// the coarsened work units — and renders `BENCH_PR9.json`
/// (hand-formatted: the harness has no serde dependency).
pub fn run_pr9(quick: bool) -> String {
    let scan = page_scan_simd(quick);
    let multiq = page_scan_multiq(quick);
    let sweep = parallel_build_sweep(quick);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"simd quantized-domain kernels + multi-query page scans\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"kernel\": \"{}\",\n", scan.kernel));
    json.push_str(&format!(
        "  \"page_scan_simd\": {{\"pr4_kernel_points_per_sec\": {:.0}, \"batch_points_per_sec\": {:.0}, \
         \"batch_scalar_points_per_sec\": {:.0}, \"simd_speedup\": {:.3}, \"scalar_ratio\": {:.3}}},\n",
        scan.pr4_pps, scan.batch_pps, scan.batch_scalar_pps, scan.simd_speedup, scan.scalar_ratio
    ));
    json.push_str("  \"page_scan_multiq\": [\n");
    for (i, r) in multiq.iter().enumerate() {
        let sep = if i + 1 == multiq.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"q\": {}, \"ns_per_point_query\": {:.2}, \"amortization\": {:.3}}}{sep}\n",
            r.q, r.ns_per_point_query, r.amortization
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"parallel_build\": {{\"available_cores\": {}, \"sequential_s\": {:.6}, \"runs\": [",
        sweep.available_cores, sweep.sequential_s
    ));
    for (i, r) in sweep.runs.iter().enumerate() {
        let sep = if i + 1 == sweep.runs.len() { "" } else { ", " };
        json.push_str(&format!(
            "{{\"threads\": {}, \"parallel_s\": {:.6}, \"speedup\": {:.3}}}{sep}",
            r.threads, r.par_s, r.speedup
        ));
    }
    json.push_str("]},\n");
    json.push_str(
        "  \"note\": \"all three page-scan paths are asserted bit-identical in-process; \
         build speedups near 1.0 are expected when available_cores is small\"\n",
    );
    json.push_str("}\n");
    json
}

/// Cost of the PR 10 structured-tracing layer at both settings: the
/// disabled path every query pays whether or not anyone is looking (must
/// stay at the PR 5 counter floor — one branch on an `Option`), and the
/// enabled path a sampled query pays per span.
#[derive(Clone, Copy, Debug)]
pub struct TraceBench {
    /// Registry counter update with a disabled registry, ns/op — the PR 5
    /// floor, re-measured in the same run for an apples-to-apples delta.
    pub counter_disabled_ns: f64,
    /// `span_begin` + `span_end` pair on an untraced clock, ns/pair.
    pub span_pair_disabled_ns: f64,
    /// `span_attr` on an untraced clock, ns/op (no formatting happens).
    pub attr_disabled_ns: f64,
    /// `span_count` on an untraced clock, ns/op.
    pub count_disabled_ns: f64,
    /// `span_begin` + `span_end` pair on a traced clock, ns/pair
    /// (allocates a node and stamps two I/O snapshots).
    pub span_pair_enabled_ns: f64,
    /// `span_pair_disabled_ns − counter_disabled_ns`, in ns: what one
    /// *disabled* span pair adds over the PR 5 per-op floor.
    pub disabled_delta_ns: f64,
}

/// Measures the span API against the PR 5 disabled-counter floor. The
/// disabled loops run on a clock that never called `enable_tracing`, i.e.
/// the path every un-sampled production query takes.
pub fn tracing_overhead(quick: bool) -> TraceBench {
    use std::hint::black_box;
    let ops = if quick { 20_000u64 } else { 2_000_000 };

    // PR 5 floor: one relaxed-load counter update, disabled registry.
    let off = Registry::disabled();
    let c = off.counter("bench_ops_total");
    c.inc(); // warm-up
    let start = Instant::now();
    for _ in 0..ops {
        c.inc();
    }
    let counter_disabled_ns = start.elapsed().as_nanos() as f64 / ops as f64;

    let mut clock = SimClock::default();
    let mut run = |f: &mut dyn FnMut(&mut SimClock)| -> f64 {
        f(&mut clock); // warm-up
        let start = Instant::now();
        f(&mut clock);
        start.elapsed().as_nanos() as f64 / ops as f64
    };
    let span_pair_disabled_ns = run(&mut |c| {
        for _ in 0..ops {
            c.span_begin(black_box("query"));
            c.span_end();
        }
    });
    let attr_disabled_ns = run(&mut |c| {
        for _ in 0..ops {
            c.span_attr(black_box("k"), &black_box(10u32));
        }
    });
    let count_disabled_ns = run(&mut |c| {
        for _ in 0..ops {
            c.span_count(black_box("pages_processed"), black_box(3));
        }
    });

    // Enabled path: trace trees grow a node per span, so run in bounded
    // bursts and drop each tree before the next burst.
    let burst = 10_000u64.min(ops);
    let bursts = ops.div_ceil(burst);
    let mut traced = SimClock::default();
    traced.enable_tracing();
    let mut elapsed = 0.0f64;
    for _ in 0..bursts {
        let start = Instant::now();
        for _ in 0..burst {
            traced.span_begin(black_box("query"));
            traced.span_end();
        }
        elapsed += start.elapsed().as_nanos() as f64;
        drop(traced.take_trace());
        traced.enable_tracing();
    }
    let span_pair_enabled_ns = elapsed / (bursts * burst) as f64;

    TraceBench {
        counter_disabled_ns,
        span_pair_disabled_ns,
        attr_disabled_ns,
        count_disabled_ns,
        span_pair_enabled_ns,
        disabled_delta_ns: span_pair_disabled_ns - counter_disabled_ns,
    }
}

/// Runs the PR 10 suite — span-API overhead at both settings against the
/// PR 5 disabled-counter floor — and renders `BENCH_PR10.json` with a
/// provenance header (hand-formatted: the harness has no serde
/// dependency). `date` is caller-supplied; benchmarks never read clocks.
pub fn run_pr10(quick: bool, date: Option<&str>) -> String {
    let prov = crate::provenance::collect(date);
    let t = tracing_overhead(quick);

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"structured-tracing span overhead\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"provenance\": {},\n", prov.to_json()));
    json.push_str(&format!(
        "  \"tracing\": {{\"counter_disabled_ns\": {:.2}, \"span_pair_disabled_ns\": {:.2}, \
         \"attr_disabled_ns\": {:.2}, \"count_disabled_ns\": {:.2}, \
         \"span_pair_enabled_ns\": {:.2}, \"disabled_delta_ns\": {:.2}}},\n",
        t.counter_disabled_ns,
        t.span_pair_disabled_ns,
        t.attr_disabled_ns,
        t.count_disabled_ns,
        t.span_pair_enabled_ns,
        t.disabled_delta_ns,
    ));
    json.push_str(
        "  \"note\": \"disabled numbers are the path un-sampled queries take: one branch per \
         span call, no allocation (pinned by crates/storage/tests/trace_alloc_free.rs); \
         counter_disabled_ns re-measures the PR 5 floor and must stay within 10% of \
         BENCH_PR4.json's observability.counter_disabled_ns\"\n",
    );
    json.push_str("}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_bench_produces_positive_throughput() {
        let s = page_scan_throughput(true);
        assert!(s.naive_pps > 0.0);
        assert!(s.kernel_pps > 0.0);
        assert!(s.speedup > 0.0);
    }

    #[test]
    fn build_bench_is_deterministic_and_positive() {
        let b = parallel_build_speedup(true);
        assert!(b.seq_s > 0.0);
        assert!(b.par_s > 0.0);
        assert_eq!(b.threads, 8, "the parallel run pins 8 explicit workers");
    }

    #[test]
    fn build_sweep_spawns_every_thread_count() {
        let s = parallel_build_sweep(true);
        assert!(s.available_cores >= 1);
        assert!(s.sequential_s > 0.0);
        let counts: Vec<usize> = s.runs.iter().map(|r| r.threads).collect();
        assert_eq!(counts, vec![1, 2, 4, 8]);
        for r in &s.runs {
            assert!(r.par_s > 0.0);
            assert!(r.speedup > 0.0);
        }
    }

    #[test]
    fn pr6_report_is_well_formed() {
        let json = run_pr6(true);
        assert!(json.contains("\"available_cores\""));
        assert!(json.contains("\"sequential_s\""));
        assert!(json.contains("\"runs\""));
        assert!(json.contains("\"threads\": 8"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn simd_scan_paths_agree_and_are_positive() {
        let s = page_scan_simd(true);
        assert!(s.pr4_pps > 0.0);
        assert!(s.batch_pps > 0.0);
        assert!(s.batch_scalar_pps > 0.0);
        assert!(!s.kernel.is_empty());
    }

    #[test]
    fn multiq_sweep_covers_all_batch_sizes() {
        let rows = page_scan_multiq(true);
        let qs: Vec<usize> = rows.iter().map(|r| r.q).collect();
        assert_eq!(qs, vec![1, 4, 16]);
        for r in &rows {
            assert!(r.ns_per_point_query > 0.0);
            assert!(r.amortization > 0.0);
        }
    }

    #[test]
    fn pr9_report_is_well_formed() {
        let json = run_pr9(true);
        assert!(json.contains("\"kernel\""));
        assert!(json.contains("\"page_scan_simd\""));
        assert!(json.contains("\"page_scan_multiq\""));
        assert!(json.contains("\"parallel_build\""));
        assert!(json.contains("\"simd_speedup\""));
        assert!(json.contains("\"amortization\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn json_report_is_well_formed() {
        let json = run_all(true);
        assert!(json.contains("\"page_scan\""));
        assert!(json.contains("\"table_build\""));
        assert!(json.contains("\"parallel_build\""));
        assert!(json.contains("\"observability\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn tracing_overhead_is_measurable_and_disabled_stays_cheap() {
        let t = tracing_overhead(true);
        assert!(t.counter_disabled_ns >= 0.0);
        assert!(t.span_pair_disabled_ns >= 0.0);
        assert!(t.attr_disabled_ns >= 0.0);
        assert!(t.count_disabled_ns >= 0.0);
        assert!(t.span_pair_enabled_ns > 0.0);
        // The disabled path is a branch; the enabled path allocates a node
        // and stamps I/O counters. Disabled must be the cheaper of the two
        // by a wide margin (loose bound: quick mode is noisy).
        assert!(
            t.span_pair_disabled_ns < t.span_pair_enabled_ns,
            "disabled span pair ({:.2} ns) should undercut enabled ({:.2} ns)",
            t.span_pair_disabled_ns,
            t.span_pair_enabled_ns
        );
    }

    #[test]
    fn pr10_report_is_well_formed() {
        let json = run_pr10(true, Some("2026-08-08"));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"commit\""));
        assert!(json.contains("\"tracing\""));
        assert!(json.contains("\"span_pair_disabled_ns\""));
        assert!(json.contains("\"disabled_delta_ns\""));
        assert!(json.contains("\"date\": \"2026-08-08\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        iq_obs::json::parse(&json).expect("report parses as JSON");
    }

    #[test]
    fn observability_overhead_is_measurable() {
        let o = observability_overhead(true);
        assert!(o.counter_disabled_ns >= 0.0);
        assert!(o.counter_enabled_ns >= 0.0);
        assert!(o.histogram_disabled_ns >= 0.0);
        assert!(o.histogram_enabled_ns >= 0.0);
        assert!(o.read_plain_ns > 0.0);
        assert!(o.read_observed_off_ns > 0.0);
        assert!(o.read_observed_on_ns > 0.0);
    }
}
