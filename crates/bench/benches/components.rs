//! Criterion micro-benchmarks for the IQ-tree building blocks: bit
//! packing, page codecs, the fetch planner, the fractal estimator and the
//! optimal-quantization pass.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use iq_cache::CachedDevice;
use iq_cost::access_prob::fraction_in_ball;
use iq_geometry::{bulk_partition, Mbr, Metric};
use iq_quantize::{unpack_cells, BitReader, BitWriter, DistTable, QuantizedPageCodec};
use iq_storage::{fetch, BlockDevice, CpuModel, DiskModel, MemDevice, SimClock};
use std::hint::black_box;

fn bench_bits(c: &mut Criterion) {
    c.bench_function("bits/write_read_4096x8", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for i in 0..4096u32 {
                w.write(i & 0xFF, 8);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..4096 {
                acc += u64::from(r.read(8).expect("in-bounds read"));
            }
            black_box(acc)
        })
    });
}

fn bench_page_codec(c: &mut Criterion) {
    let dim = 16;
    let codec = QuantizedPageCodec::new(dim, 8192);
    let mbr = Mbr::from_bounds(vec![0.0; dim], vec![1.0; dim]);
    let points = iq_data::uniform(dim, codec.capacity(4), 1);
    let block = codec.encode(
        &mbr,
        4,
        points.iter().enumerate().map(|(i, p)| (i as u32, p)),
    );
    c.bench_function("page/encode_4bit_full_page", |b| {
        b.iter(|| {
            black_box(codec.encode(
                &mbr,
                4,
                points.iter().enumerate().map(|(i, p)| (i as u32, p)),
            ))
        })
    });
    c.bench_function("page/decode_4bit_full_page", |b| {
        b.iter(|| black_box(codec.decode(&block)))
    });
}

fn bench_kernels(c: &mut Criterion) {
    // The PR-4 distance kernels: streaming page filter vs naive decode,
    // table build, and the width-specialized bit unpacker.
    let dim = 16;
    let g = 6u32;
    let codec = QuantizedPageCodec::new(dim, 8192);
    let mbr = Mbr::from_bounds(vec![0.0; dim], vec![1.0; dim]);
    let points = iq_data::uniform(dim, codec.capacity(g), 1);
    let block = codec.encode(
        &mbr,
        g,
        points.iter().enumerate().map(|(i, p)| (i as u32, p)),
    );
    let q = vec![0.37f32; dim];

    let mut table = DistTable::new();
    let mut scratch: Vec<u32> = Vec::new();
    c.bench_function("kernel/page_filter_table_6bit", |b| {
        b.iter(|| {
            let view = codec.try_view(&block).expect("valid page");
            table.build(&mbr, view.bits(), Metric::Euclidean, &q, view.len());
            let mut acc = 0.0f64;
            view.for_each_entry(&mut scratch, |_, cells| {
                acc += table.mindist_key(cells);
            });
            black_box(acc)
        })
    });
    c.bench_function("kernel/page_filter_naive_6bit", |b| {
        b.iter(|| {
            let page = codec.try_decode(&block).expect("valid page");
            let grid = iq_quantize::GridQuantizer::new(&mbr, page.bits());
            let mut acc = 0.0f64;
            for i in 0..page.len() {
                acc += Metric::Euclidean.mindist_key(&q, &grid.cell_box(page.cells(i)));
            }
            black_box(acc)
        })
    });
    c.bench_function("kernel/table_build_16d_6bit", |b| {
        b.iter(|| {
            table.build(&mbr, g, Metric::Euclidean, &q, 1 << 20);
            black_box(table.is_materialized())
        })
    });
    let packed: Vec<u8> = (0..dim).map(|i| i as u8).collect();
    let mut cells = vec![0u32; dim];
    c.bench_function("kernel/unpack_cells_8bit_16d", |b| {
        b.iter(|| {
            unpack_cells(&packed, 8, &mut cells);
            black_box(cells[dim - 1])
        })
    });
}

fn bench_fetch_planner(c: &mut Criterion) {
    let disk = DiskModel::default();
    let positions: Vec<u64> = (0..10_000u64).map(|i| i * 7 % 65_536).collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    c.bench_function("fetch/plan_10k_blocks", |b| {
        b.iter(|| black_box(fetch::plan_fetch(&sorted, &disk)))
    });
}

fn bench_partition(c: &mut Criterion) {
    let ds = iq_data::uniform(16, 50_000, 2);
    c.bench_function("partition/bulk_50k_16d", |b| {
        b.iter_batched(
            || ds.clone(),
            |ds| black_box(bulk_partition(&ds, 1000)),
            BatchSize::LargeInput,
        )
    });
}

fn bench_fractal(c: &mut Criterion) {
    let ds = iq_data::weather_like(9, 20_000, 3);
    c.bench_function("fractal/correlation_dim_20k_9d", |b| {
        b.iter(|| black_box(iq_data::fractal::correlation_dimension_auto(&ds)))
    });
}

fn bench_minkowski(c: &mut Criterion) {
    let sides = vec![0.25f32; 16];
    c.bench_function("volume/minkowski_exact_16d", |b| {
        b.iter(|| {
            black_box(iq_geometry::volume::minkowski_box_ball(
                Metric::Euclidean,
                &sides,
                0.1,
            ))
        })
    });
}

fn bench_access_probability(c: &mut Criterion) {
    // The convolution fraction is the scheduler's hot path.
    let mbr = Mbr::from_bounds(vec![0.2; 16], vec![0.6; 16]);
    let q = vec![0.35f32; 16];
    c.bench_function("access_prob/conv_fraction_16d", |b| {
        b.iter(|| black_box(fraction_in_ball(Metric::Euclidean, &mbr, &q, 0.45)))
    });
    c.bench_function("access_prob/maxmetric_fraction_16d", |b| {
        b.iter(|| black_box(fraction_in_ball(Metric::Maximum, &mbr, &q, 0.45)))
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
    let mut dev = CachedDevice::new(Box::new(MemDevice::new(8192)), 1024);
    dev.append(&mut clock, &vec![1u8; 8192 * 512])
        .expect("append");
    // Warm the frames.
    for b in 0..512u64 {
        dev.read_to_vec(&mut clock, b, 1).expect("warm read");
    }
    let mut i = 0u64;
    c.bench_function("cache/hit_read_8k", |b| {
        b.iter(|| {
            i = (i + 7) % 512;
            black_box(dev.read_to_vec(&mut clock, i, 1))
        })
    });
}

fn bench_nn_query(c: &mut Criterion) {
    use iq_tree::{IqTree, IqTreeOptions};
    let ds = iq_data::uniform(16, 50_000, 9);
    let mut clock = SimClock::default();
    let tree = IqTree::build(
        &ds,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || Box::new(MemDevice::new(8192)),
        &mut clock,
    );
    let mut i = 0u32;
    c.bench_function("iqtree/nn_query_50k_16d", |b| {
        b.iter(|| {
            clock.reset();
            i = i.wrapping_add(1);
            let q = vec![(i % 97) as f32 / 97.0; 16];
            black_box(tree.nearest(&mut clock, &q))
        })
    });
    let mut i = 0u32;
    c.bench_function("iqtree/knn10_query_50k_16d", |b| {
        b.iter(|| {
            clock.reset();
            i = i.wrapping_add(1);
            let q = vec![(i % 89) as f32 / 89.0; 16];
            black_box(tree.knn(&mut clock, &q, 10))
        })
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_bits, bench_page_codec, bench_kernels, bench_fetch_planner,
              bench_partition, bench_fractal, bench_minkowski,
              bench_access_probability, bench_cache, bench_nn_query
}
criterion_main!(components);
