//! Criterion versions of the paper's figures at a reduced scale
//! (wall-clock per query, complementing the simulated-time tables the
//! `fig*` binaries print at paper scale).
//!
//! One benchmark group per figure; each group benches one NN query against
//! each method/variant on a pre-built index over a 20k-point workload.

use criterion::{criterion_group, criterion_main, Criterion};
use iq_bench::{Config, DataKind};
use iq_geometry::Metric;
use iq_scan::SeqScan;
use iq_storage::{MemDevice, SimClock};
use iq_tree::{IqTree, IqTreeOptions};
use iq_vafile::VaFile;
use iq_xtree::{XTree, XTreeOptions};
use std::hint::black_box;

const N: usize = 20_000;
const QUERIES: usize = 8;

fn clock(cfg: &Config) -> SimClock {
    SimClock::new(cfg.disk, cfg.cpu)
}

fn dev(cfg: &Config) -> Box<MemDevice> {
    Box::new(MemDevice::new(cfg.disk.block_size))
}

/// Figure 7 (reduced): the four IQ-tree concept variants, 12 dimensions.
fn fig7_variants(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = DataKind::Uniform.workload(12, N, QUERIES, cfg.seed);
    let mut group = c.benchmark_group("fig7_iqtree_variants_12d");
    for (name, opts) in [
        ("opt+quant", IqTreeOptions::default()),
        (
            "opt+noquant",
            IqTreeOptions {
                quantize: false,
                ..Default::default()
            },
        ),
        (
            "std+quant",
            IqTreeOptions {
                scheduled_io: false,
                ..Default::default()
            },
        ),
        (
            "std+noquant",
            IqTreeOptions {
                quantize: false,
                scheduled_io: false,
                ..Default::default()
            },
        ),
    ] {
        let mut cl = clock(&cfg);
        let tree = IqTree::build(&w.db, Metric::Euclidean, opts, || dev(&cfg), &mut cl);
        let mut qi = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                cl.reset();
                let q = w.queries.point(qi % w.queries.len());
                qi += 1;
                black_box(tree.nearest(&mut cl, q))
            })
        });
    }
    group.finish();
}

/// Figure 8 (reduced): method comparison at 12 dimensions.
fn fig8_methods(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = DataKind::Uniform.workload(12, N, QUERIES, cfg.seed);
    let mut group = c.benchmark_group("fig8_methods_12d");

    let mut cl = clock(&cfg);
    let iq = IqTree::build(
        &w.db,
        Metric::Euclidean,
        IqTreeOptions::default(),
        || dev(&cfg),
        &mut cl,
    );
    let mut qi = 0usize;
    group.bench_function("iqtree", |b| {
        b.iter(|| {
            cl.reset();
            let q = w.queries.point(qi % w.queries.len());
            qi += 1;
            black_box(iq.nearest(&mut cl, q))
        })
    });

    let mut cl = clock(&cfg);
    let xt = XTree::build(
        &w.db,
        Metric::Euclidean,
        XTreeOptions::default(),
        dev(&cfg),
        dev(&cfg),
        &mut cl,
    );
    let mut qi = 0usize;
    group.bench_function("xtree", |b| {
        b.iter(|| {
            cl.reset();
            let q = w.queries.point(qi % w.queries.len());
            qi += 1;
            black_box(xt.nearest(&mut cl, q))
        })
    });

    let mut cl = clock(&cfg);
    let va = VaFile::build(&w.db, Metric::Euclidean, 5, dev(&cfg), dev(&cfg), &mut cl);
    let mut qi = 0usize;
    group.bench_function("vafile_5bit", |b| {
        b.iter(|| {
            cl.reset();
            let q = w.queries.point(qi % w.queries.len());
            qi += 1;
            black_box(va.nearest(&mut cl, q))
        })
    });

    let mut cl = clock(&cfg);
    let scan = SeqScan::build(&w.db, Metric::Euclidean, dev(&cfg), &mut cl);
    let mut qi = 0usize;
    group.bench_function("scan", |b| {
        b.iter(|| {
            cl.reset();
            let q = w.queries.point(qi % w.queries.len());
            qi += 1;
            black_box(scan.nearest(&mut cl, q))
        })
    });
    group.finish();
}

/// Figures 9–12 (reduced): one NN query per data distribution on the
/// IQ-tree.
fn fig9_to_12_distributions(c: &mut Criterion) {
    let cfg = Config::tiny();
    let mut group = c.benchmark_group("fig9_12_iqtree_distributions");
    for (name, kind, dim) in [
        ("fig9_uniform_16d", DataKind::Uniform, 16),
        ("fig10_cad_16d", DataKind::Cad, 16),
        ("fig11_color_16d", DataKind::Color, 16),
        ("fig12_weather_9d", DataKind::Weather, 9),
    ] {
        let w = kind.workload(dim, N, QUERIES, cfg.seed);
        let mut cl = clock(&cfg);
        let df = iq_bench::estimate_fractal(&w.db);
        let opts = IqTreeOptions {
            fractal_dim: Some(df),
            ..Default::default()
        };
        let tree = IqTree::build(&w.db, Metric::Euclidean, opts, || dev(&cfg), &mut cl);
        let mut qi = 0usize;
        group.bench_function(name, |b| {
            b.iter(|| {
                cl.reset();
                let q = w.queries.point(qi % w.queries.len());
                qi += 1;
                black_box(tree.nearest(&mut cl, q))
            })
        });
    }
    group.finish();
}

/// Build-time benchmark: bulk load + optimal quantization.
fn build_times(c: &mut Criterion) {
    let cfg = Config::tiny();
    let w = DataKind::Uniform.workload(16, N, 1, cfg.seed);
    let mut group = c.benchmark_group("build_20k_16d");
    group.sample_size(10);
    group.bench_function("iqtree", |b| {
        b.iter(|| {
            let mut cl = clock(&cfg);
            black_box(IqTree::build(
                &w.db,
                Metric::Euclidean,
                IqTreeOptions::default(),
                || dev(&cfg),
                &mut cl,
            ))
        })
    });
    group.bench_function("xtree", |b| {
        b.iter(|| {
            let mut cl = clock(&cfg);
            black_box(XTree::build(
                &w.db,
                Metric::Euclidean,
                XTreeOptions::default(),
                dev(&cfg),
                dev(&cfg),
                &mut cl,
            ))
        })
    });
    group.bench_function("vafile_5bit", |b| {
        b.iter(|| {
            let mut cl = clock(&cfg);
            black_box(VaFile::build(
                &w.db,
                Metric::Euclidean,
                5,
                dev(&cfg),
                dev(&cfg),
                &mut cl,
            ))
        })
    });
    group.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(20);
    targets = fig7_variants, fig8_methods, fig9_to_12_distributions, build_times
}
criterion_main!(figures);
