//! Grid quantization relative to an MBR.
//!
//! "A number of g bits per dimension is used to approximate the location of
//! points in a data page by virtually dividing the MBR along each dimension
//! into 2^g partitions of equal size" (Section 3.1). In contrast to the
//! VA-file, the grid is *relative to the page MBR*, which is why the IQ-tree
//! needs fewer bits for the same accuracy.

use iq_geometry::Mbr;

/// A `2^g`-cells-per-dimension grid laid over an MBR.
#[derive(Clone, Debug)]
pub struct GridQuantizer {
    g: u32,
    lb: Vec<f32>,
    /// Cell width per dimension (0 for degenerate dimensions).
    cell_width: Vec<f64>,
}

impl GridQuantizer {
    /// Builds the grid for `mbr` at resolution `g` bits per dimension.
    ///
    /// # Panics
    /// Panics if `g` is 0 or greater than 31 (the 32-bit exact case is
    /// handled by the page codec, not by a grid).
    pub fn new(mbr: &Mbr, g: u32) -> Self {
        assert!(
            (1..=31).contains(&g),
            "grid resolution must be in 1..=31 bits"
        );
        let cells = f64::from(1u32 << g);
        let cell_width = (0..mbr.dim()).map(|i| mbr.extent(i) / cells).collect();
        Self {
            g,
            lb: mbr.lbs().to_vec(),
            cell_width,
        }
    }

    /// Bits per dimension.
    pub fn bits(&self) -> u32 {
        self.g
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lb.len()
    }

    /// Number of cells per dimension (`2^g`).
    pub fn cells_per_dim(&self) -> u32 {
        1u32 << self.g
    }

    /// Cell number of `x` in dimension `i`, clamped into the grid (points on
    /// the MBR's upper boundary land in the last cell; callers may also pass
    /// points slightly outside the MBR, e.g. after floating-point rounding).
    #[inline]
    pub fn cell_of(&self, i: usize, x: f32) -> u32 {
        let w = self.cell_width[i];
        if w == 0.0 {
            return 0;
        }
        let rel = (f64::from(x) - f64::from(self.lb[i])) / w;
        let max = self.cells_per_dim() - 1;
        (rel.floor().max(0.0) as u32).min(max)
    }

    /// Encodes a full point into per-dimension cell numbers, appending to
    /// `out`.
    pub fn encode_into(&self, p: &[f32], out: &mut Vec<u32>) {
        debug_assert_eq!(p.len(), self.dim());
        out.extend(p.iter().enumerate().map(|(i, &x)| self.cell_of(i, x)));
    }

    /// Encodes a full point into per-dimension cell numbers.
    pub fn encode(&self, p: &[f32]) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.dim());
        self.encode_into(p, &mut out);
        out
    }

    /// Lower edge of cell `c` in dimension `i`.
    #[inline]
    pub fn cell_lb(&self, i: usize, c: u32) -> f32 {
        (f64::from(self.lb[i]) + f64::from(c) * self.cell_width[i]) as f32
    }

    /// Upper edge of cell `c` in dimension `i`.
    #[inline]
    pub fn cell_ub(&self, i: usize, c: u32) -> f32 {
        (f64::from(self.lb[i]) + f64::from(c + 1) * self.cell_width[i]) as f32
    }

    /// The box approximation of a cell vector — the "virtual grid cell" the
    /// point is known to lie in.
    pub fn cell_box(&self, cells: &[u32]) -> Mbr {
        debug_assert_eq!(cells.len(), self.dim());
        let lb = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| self.cell_lb(i, c))
            .collect();
        let ub = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| self.cell_ub(i, c))
            .collect();
        Mbr::from_bounds(lb, ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_geometry::Metric;
    use proptest::prelude::*;

    fn unit_mbr(d: usize) -> Mbr {
        Mbr::from_bounds(vec![0.0; d], vec![1.0; d])
    }

    #[test]
    fn one_bit_splits_in_half() {
        let q = GridQuantizer::new(&unit_mbr(2), 1);
        assert_eq!(q.encode(&[0.25, 0.75]), vec![0, 1]);
        assert_eq!(q.encode(&[0.49, 0.51]), vec![0, 1]);
    }

    #[test]
    fn upper_boundary_lands_in_last_cell() {
        let q = GridQuantizer::new(&unit_mbr(1), 3);
        assert_eq!(q.encode(&[1.0]), vec![7]);
        assert_eq!(q.encode(&[1.1]), vec![7]); // outside: clamped
        assert_eq!(q.encode(&[-0.1]), vec![0]); // outside: clamped
    }

    #[test]
    fn degenerate_dimension_is_cell_zero() {
        let mbr = Mbr::from_bounds(vec![2.0, 0.0], vec![2.0, 1.0]);
        let q = GridQuantizer::new(&mbr, 4);
        assert_eq!(q.encode(&[2.0, 0.5]), vec![0, 8]);
        let b = q.cell_box(&[0, 8]);
        assert_eq!(b.lb(0), 2.0);
        assert_eq!(b.ub(0), 2.0);
    }

    #[test]
    fn cell_box_contains_point() {
        let mbr = Mbr::from_bounds(vec![-1.0, 3.0], vec![1.0, 8.0]);
        let q = GridQuantizer::new(&mbr, 5);
        let p = [0.37f32, 5.11];
        let b = q.cell_box(&q.encode(&p));
        assert!(b.contains_point(&p));
    }

    proptest! {
        /// The cell box always contains the encoded point, and its diameter
        /// shrinks by half per extra bit.
        #[test]
        fn prop_cell_box_contains_and_shrinks(
            coords in proptest::collection::vec(-10.0f32..10.0, 4),
            lo in -20.0f32..-11.0,
            hi in 11.0f32..20.0,
            g in 1u32..10,
        ) {
            let d = coords.len();
            let mbr = Mbr::from_bounds(vec![lo; d], vec![hi; d]);
            let q = GridQuantizer::new(&mbr, g);
            let b = q.cell_box(&q.encode(&coords));
            prop_assert!(b.contains_point(&coords));
            let expect_side = (f64::from(hi) - f64::from(lo)) / f64::from(1u32 << g);
            for i in 0..d {
                prop_assert!((b.extent(i) - expect_side).abs() < 1e-3);
            }
        }

        /// Quantization error is bounded by the cell diagonal.
        #[test]
        fn prop_error_bounded_by_cell_diagonal(
            coords in proptest::collection::vec(0.0f32..1.0, 8),
            g in 1u32..8,
        ) {
            let d = coords.len();
            let q = GridQuantizer::new(&unit_mbr(d), g);
            let b = q.cell_box(&q.encode(&coords));
            let center: Vec<f32> = (0..d).map(|i| (b.lb(i) + b.ub(i)) / 2.0).collect();
            let err = Metric::Euclidean.distance(&coords, &center);
            let half_diag = (d as f64).sqrt() * 0.5 / f64::from(1u32 << g);
            prop_assert!(err <= half_diag + 1e-6, "err {err} > {half_diag}");
        }
    }
}
