//! Bit-level packing of quantized cell numbers.
//!
//! Cell numbers are written LSB-first into a byte stream. Widths of 1–32
//! bits are supported; 32-bit writes are used by the IQ-tree's exact
//! special case (storing `f32` bit patterns directly in the quantized page).
//!
//! Reading past the end of a buffer is a data error, not a programmer
//! error — a truncated or corrupt page produces exactly that — so
//! [`BitReader::read`] returns [`IqError::Decode`] instead of panicking.

use iq_storage::{IqError, IqResult};

/// Writes values of arbitrary bit width into a byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte (0 = byte boundary).
    bit_pos: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 32, or if `value` does not fit
    /// in `width` bits.
    pub fn write(&mut self, value: u32, width: u32) {
        assert!((1..=32).contains(&width), "bit width must be in 1..=32");
        assert!(
            width == 32 || value < (1u32 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        let mut v = u64::from(value);
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.buf.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let byte = self.buf.last_mut().expect("buffer is never empty here");
            *byte |= ((v & ((1u64 << take) - 1)) as u8) << self.bit_pos;
            v >>= take;
            self.bit_pos = (self.bit_pos + take) % 8;
            remaining -= take;
        }
    }

    /// Pads to the next byte boundary with zero bits.
    pub fn align(&mut self) {
        self.bit_pos = 0;
    }

    /// Number of whole bytes written so far (including a partially filled
    /// final byte).
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Consumes the writer, returning the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the packed bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Unpacks `out.len()` cell numbers of `width` bits from `packed`, matching
/// the LSB-first layout written by [`BitWriter`] — the bounds-check-free
/// inner loop of the streaming page decoder.
///
/// Unlike [`BitReader::read`], which re-checks the buffer on every value,
/// this validates once up front: callers (the page view, the VA-file scan)
/// have already checked the region length against the entry layout, so the
/// per-value work is pure bit arithmetic with unrolled fast paths for the
/// byte-aligned widths 4, 8, 16 and 32.
///
/// # Panics
/// Panics if `width` is outside 1..=32 or `packed` is too short for
/// `out.len()` values — programmer errors, since lengths are validated at
/// the page level before decoding.
pub fn unpack_cells(packed: &[u8], width: u32, out: &mut [u32]) {
    assert!((1..=32).contains(&width), "bit width must be in 1..=32");
    assert!(
        out.len() * width as usize <= packed.len() * 8,
        "{} values of {width} bits do not fit in {} bytes",
        out.len(),
        packed.len()
    );
    match width {
        4 => {
            for (j, c) in out.iter_mut().enumerate() {
                *c = u32::from((packed[j / 2] >> ((j & 1) * 4)) & 0x0F);
            }
        }
        8 => unpack_bytewise::<1>(packed, out),
        16 => unpack_bytewise::<2>(packed, out),
        32 => unpack_bytewise::<4>(packed, out),
        w => {
            // Generic path: load the (at most 5) bytes covering the value
            // into a 64-bit window and shift. The up-front length assert
            // guarantees every window is in bounds.
            let mask = (1u64 << w) - 1;
            let mut pos = 0usize;
            for c in out.iter_mut() {
                let byte = pos / 8;
                let bit = (pos % 8) as u32;
                let nbytes = ((bit + w) as usize).div_ceil(8);
                let mut window = 0u64;
                for (k, &b) in packed[byte..byte + nbytes].iter().enumerate() {
                    window |= u64::from(b) << (8 * k);
                }
                *c = ((window >> bit) & mask) as u32;
                pos += w as usize;
            }
        }
    }
}

/// The shared body of the byte-aligned `unpack_cells` fast paths: value `j`
/// occupies the `B` little-endian bytes at `j * B` (widths 8, 16 and 32).
/// One generic keeps the scalar fast paths from forking per width — the
/// SIMD variants in [`crate::simd`] dispatch on width at the page level.
#[inline]
fn unpack_bytewise<const B: usize>(packed: &[u8], out: &mut [u32]) {
    for (j, c) in out.iter_mut().enumerate() {
        let mut le = [0u8; 4];
        le[..B].copy_from_slice(&packed[j * B..j * B + B]);
        *c = u32::from_le_bytes(le);
    }
}

/// Reads values of arbitrary bit width from a byte buffer.
#[derive(Debug)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `buf`, starting at bit 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Creates a reader starting at an absolute bit offset.
    pub fn at_bit(buf: &'a [u8], bit: usize) -> Self {
        Self { buf, pos: bit }
    }

    /// Reads the next `width` bits (LSB-first).
    ///
    /// Fails with [`IqError::Decode`] if the buffer is exhausted — the
    /// signature of a truncated or corrupt packed page.
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 32 (programmer error:
    /// widths come from code, not data).
    pub fn read(&mut self, width: u32) -> IqResult<u32> {
        assert!((1..=32).contains(&width), "bit width must be in 1..=32");
        if self.pos + width as usize > self.buf.len() * 8 {
            return Err(IqError::Decode {
                detail: format!(
                    "bit buffer exhausted: {} bits requested at bit {} of {}",
                    width,
                    self.pos,
                    self.buf.len() * 8
                ),
            });
        }
        let mut out: u64 = 0;
        let mut got = 0u32;
        while got < width {
            let byte = self.buf[self.pos / 8];
            let off = (self.pos % 8) as u32;
            let avail = 8 - off;
            let take = avail.min(width - got);
            let bits = (u64::from(byte) >> off) & ((1u64 << take) - 1);
            out |= bits << got;
            got += take;
            self.pos += take as usize;
        }
        Ok(out as u32)
    }

    /// Skips to the next byte boundary.
    pub fn align(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        let values = [
            (0b1u32, 1),
            (0b101u32, 3),
            (0xFFu32, 8),
            (0x12345u32, 20),
            (u32::MAX, 32),
        ];
        for &(v, width) in &values {
            w.write(v, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &values {
            assert_eq!(r.read(width).unwrap(), v, "width {width}");
        }
    }

    #[test]
    fn align_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write(1, 1);
        w.align();
        w.write(0xAB, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b0000_0001, 0xAB]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read(1).unwrap(), 1);
        r.align();
        assert_eq!(r.read(8).unwrap(), 0xAB);
    }

    #[test]
    fn reader_at_bit_offset() {
        let mut w = BitWriter::new();
        w.write(0b11, 2);
        w.write(0b1010, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::at_bit(&bytes, 2);
        assert_eq!(r.read(4).unwrap(), 0b1010);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_value_rejected() {
        BitWriter::new().write(4, 2);
    }

    #[test]
    fn read_past_end_is_an_error() {
        let mut r = BitReader::new(&[0u8]);
        let err = r.read(9).unwrap_err();
        assert!(matches!(err, IqError::Decode { .. }));
        assert!(err.is_corruption());
        // A failed read consumes nothing: what is still in bounds reads fine.
        assert_eq!(r.read(8).unwrap(), 0);
    }

    #[test]
    fn read_exactly_to_end_succeeds_then_errors() {
        let mut r = BitReader::new(&[0xFF, 0x0F]);
        assert_eq!(r.read(12).unwrap(), 0xFFF);
        assert_eq!(r.read(4).unwrap(), 0);
        assert!(r.read(1).is_err(), "buffer exactly exhausted");
    }

    #[test]
    fn at_bit_past_end_errors_instead_of_wrapping() {
        let mut r = BitReader::at_bit(&[0u8; 2], 99);
        assert!(r.read(1).is_err());
    }

    #[test]
    fn unpack_cells_matches_bit_reader_for_every_width() {
        for width in 1u32..=32 {
            let values: Vec<u32> = (0..23u32)
                .map(|i| {
                    let mask = if width == 32 {
                        u32::MAX
                    } else {
                        (1 << width) - 1
                    };
                    i.wrapping_mul(0x9E37_79B9) & mask
                })
                .collect();
            let mut w = BitWriter::new();
            for &v in &values {
                w.write(v, width);
            }
            let bytes = w.into_bytes();
            let mut out = vec![0u32; values.len()];
            unpack_cells(&bytes, width, &mut out);
            assert_eq!(out, values, "width {width}");
            let mut r = BitReader::new(&bytes);
            for &v in &values {
                assert_eq!(r.read(width).unwrap(), v, "width {width}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn unpack_cells_rejects_short_buffers() {
        let mut out = [0u32; 3];
        unpack_cells(&[0u8; 2], 8, &mut out);
    }

    #[test]
    fn dense_one_bit_stream() {
        let mut w = BitWriter::new();
        for i in 0..64 {
            w.write(u32::from(i % 2 == 0), 1);
        }
        assert_eq!(w.len_bytes(), 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..64 {
            assert_eq!(r.read(1).unwrap(), u32::from(i % 2 == 0));
        }
    }
}
