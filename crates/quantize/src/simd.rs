//! Runtime-dispatched SIMD kernels for the quantized-domain hot path.
//!
//! Three kernels back every level-2 page scan:
//!
//! * **unpack** — decode the packed `g`-bit cell numbers of a whole page
//!   into an entry-major `u32` block (`QuantPageView::unpack_all`);
//! * **fold** — accumulate `DistTable` rows over dimensions for a block of
//!   entries (MINDIST/MAXDIST keys, the ADC loop of PQ systems);
//! * **flags** — AND-fold `WindowTable` per-dimension flags for a block of
//!   entries (window classification).
//!
//! Each kernel has a scalar implementation (the portable fallback and the
//! property-test oracle) and an AVX2 implementation, with an SSE4.1 middle
//! tier for the f64 fold. The active tier is picked **once** per process via
//! [`is_x86_feature_detected!`], can be pinned down (never up) with
//! [`set_kernel_override`], and is forced to scalar when the
//! `IQ_FORCE_SCALAR=1` environment variable is set at startup.
//!
//! # Bit-identity contract
//!
//! All SIMD paths are *vertical*: one lane per entry (or per query), and the
//! per-entry fold still walks dimensions in index order with the same IEEE
//! f64 add / max the scalar code uses. `_mm256_add_pd` is an IEEE add per
//! lane, and `_mm256_max_pd` agrees with `f64::max` on the non-NaN,
//! non-negative contribution domain, so every key produced here is
//! bit-for-bit equal to the scalar fold — which is itself bit-for-bit equal
//! to `Metric::mindist_key` on the grid cell box. The kernels never reorder
//! or re-associate arithmetic across dimensions.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// The SIMD tier a kernel runs at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar code; always available, the conformance oracle.
    Scalar,
    /// SSE4.1: 2-wide f64 folds (unpack and flag kernels stay scalar).
    Sse41,
    /// AVX2: 4-wide f64 folds, 8-wide gather-based unpack, 8-wide flags.
    Avx2,
}

impl Kernel {
    /// Stable lowercase name, as exported by the `simd_dispatch` gauge.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Sse41 => "sse41",
            Kernel::Avx2 => "avx2",
        }
    }

    /// Numeric code for metric export (scalar 0, sse41 1, avx2 2).
    pub fn code(self) -> u8 {
        match self {
            Kernel::Scalar => 0,
            Kernel::Sse41 => 1,
            Kernel::Avx2 => 2,
        }
    }
}

/// 0 = no override, else `Kernel::code() + 1`.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);
static DETECTED: OnceLock<Kernel> = OnceLock::new();

fn detect() -> Kernel {
    if std::env::var("IQ_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0") {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Kernel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse4.1") {
            return Kernel::Sse41;
        }
    }
    Kernel::Scalar
}

/// The kernel every batch entry point dispatches to: the one-time CPU
/// detection result, clamped down by [`set_kernel_override`] if one is set.
#[inline]
pub fn kernel() -> Kernel {
    let detected = *DETECTED.get_or_init(detect);
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 if detected.code() >= 1 => Kernel::Sse41,
        3 if detected.code() >= 2 => Kernel::Avx2,
        _ => detected,
    }
}

/// Name of the active kernel (`avx2` / `sse41` / `scalar`).
pub fn kernel_name() -> &'static str {
    kernel().name()
}

/// Pins the dispatch tier for this process (benchmarks and tests). The
/// override can only select a tier the CPU supports — asking for a tier
/// above the detected one keeps the detected tier, so forcing can never
/// introduce illegal instructions. `None` restores runtime detection.
/// Returns the tier now in effect.
pub fn set_kernel_override(k: Option<Kernel>) -> Kernel {
    OVERRIDE.store(k.map_or(0, |k| k.code() + 1), Ordering::Relaxed);
    kernel()
}

/// How per-dimension contributions fold into a key: a sum for the additive
/// metrics (L2 in squared key space, L1), a max for L∞. Mirrors
/// `Metric::combine` with seed `0.0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldOp {
    /// `acc + contrib` (Euclidean, Manhattan).
    Sum,
    /// `acc.max(contrib)` (Maximum).
    Max,
}

impl FoldOp {
    #[inline]
    fn fold(self, acc: f64, contrib: f64) -> f64 {
        match self {
            FoldOp::Sum => acc + contrib,
            FoldOp::Max => acc.max(contrib),
        }
    }
}

// ---------------------------------------------------------------------------
// unpack: packed g-bit cells -> entry-major u32 block
// ---------------------------------------------------------------------------

/// Unpacks the cell vectors of `n = out.len() / dim` fixed-stride entries.
///
/// Entry `j`'s packed cells start at byte `j * entry + cell_off` of `body`
/// (the page layout: a 4-byte id precedes the cells, so `cell_off` is 4).
/// `out[j * dim..][..dim]` receives entry `j`'s cells. Results are identical
/// to calling [`crate::unpack_cells`] per entry.
pub fn unpack_block(
    body: &[u8],
    entry: usize,
    cell_off: usize,
    width: u32,
    dim: usize,
    out: &mut [u32],
) {
    debug_assert_eq!(out.len() % dim.max(1), 0);
    let n = out.len().checked_div(dim).unwrap_or(0);
    debug_assert!(
        n == 0 || (n - 1) * entry + cell_off + (dim * width as usize).div_ceil(8) <= body.len()
    );
    #[cfg(target_arch = "x86_64")]
    if kernel() == Kernel::Avx2 && (1..=25).contains(&width) && dim > 0 {
        // SAFETY: AVX2 presence was verified by runtime detection.
        unsafe { unpack_block_avx2(body, entry, cell_off, width, dim, out) };
        return;
    }
    unpack_block_scalar(body, entry, cell_off, width, dim, out);
}

fn unpack_block_scalar(
    body: &[u8],
    entry: usize,
    cell_off: usize,
    width: u32,
    dim: usize,
    out: &mut [u32],
) {
    for (j, row) in out.chunks_exact_mut(dim.max(1)).enumerate() {
        let off = j * entry + cell_off;
        crate::bits::unpack_cells(&body[off..off + (entry - cell_off)], width, row);
    }
}

/// AVX2 unpack for widths 1..=25: one 8-lane dword gather per 8 cells.
///
/// Cell `i` of an entry occupies bits `[i*w, (i+1)*w)` of the entry's cell
/// bytes; because entries start byte-aligned, the byte offset `(i*w)/8` and
/// bit shift `(i*w)%8` of every cell are the same for all entries and are
/// precomputed once per page. Each gather reads 4 bytes at `base + off[i]`
/// (`shift + width <= 7 + 25 = 32` always fits a dword). Entries whose last
/// gather would read past `body` fall back to the scalar decoder — the
/// gather may legitimately read a neighbouring entry's bytes (they are
/// masked off), but never out of bounds.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn unpack_block_avx2(
    body: &[u8],
    entry: usize,
    cell_off: usize,
    width: u32,
    dim: usize,
    out: &mut [u32],
) {
    use std::arch::x86_64::*;
    let w = width as usize;
    let n = out.len() / dim;
    // Per-cell byte offsets and bit shifts, padded to a multiple of 8 by
    // repeating the last cell (duplicate gathers of a valid address).
    let vecs = dim.div_ceil(8);
    let mut offs = vec![0i32; vecs * 8];
    let mut shifts = vec![0i32; vecs * 8];
    for i in 0..vecs * 8 {
        let cell = i.min(dim - 1);
        offs[i] = ((cell * w) / 8) as i32;
        shifts[i] = ((cell * w) % 8) as i32;
    }
    let max_off = offs[dim - 1] as usize;
    let mask = _mm256_set1_epi32(((1u64 << width) - 1) as i32);
    let base_ptr = body.as_ptr();
    for j in 0..n {
        let base = j * entry + cell_off;
        if base + max_off + 4 > body.len() {
            // Tail entries where a 4-byte gather would run off the body.
            let off = j * entry + cell_off;
            crate::bits::unpack_cells(
                &body[off..off + (entry - cell_off)],
                width,
                &mut out[j * dim..(j + 1) * dim],
            );
            continue;
        }
        let p = base_ptr.add(base);
        let row = out[j * dim..].as_mut_ptr();
        for v in 0..vecs {
            let lanes = (dim - v * 8).min(8);
            let offv = _mm256_loadu_si256(offs.as_ptr().add(v * 8).cast());
            let shv = _mm256_loadu_si256(shifts.as_ptr().add(v * 8).cast());
            let raw = _mm256_i32gather_epi32::<1>(p.cast(), offv);
            let vals = _mm256_and_si256(_mm256_srlv_epi32(raw, shv), mask);
            if lanes == 8 {
                _mm256_storeu_si256(row.add(v * 8).cast(), vals);
            } else {
                let mut tmp = [0i32; 8];
                _mm256_storeu_si256(tmp.as_mut_ptr().cast(), vals);
                for (l, t) in tmp.iter().take(lanes).enumerate() {
                    *row.add(v * 8 + l) = *t as u32;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// fold: DistTable rows over an entry block
// ---------------------------------------------------------------------------

/// Folds one dimension-major table (`rows[i * cells + c]`) over an
/// entry-major cell block, writing one key per entry. Bit-identical to the
/// scalar per-entry fold.
pub fn fold_block(
    op: FoldOp,
    rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [f64],
) {
    let n = out.len();
    debug_assert_eq!(block.len(), n * dim);
    debug_assert_eq!(rows.len(), dim * cells);
    assert!(
        dim * cells <= i32::MAX as usize,
        "table too large for i32 gather indices"
    );
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier verified by runtime detection.
        Kernel::Avx2 => unsafe { fold_block_avx2(op, rows, cells, dim, block, out) },
        #[cfg(target_arch = "x86_64")]
        Kernel::Sse41 => unsafe { fold_block_sse41(op, rows, cells, dim, block, out) },
        _ => fold_block_scalar(op, rows, cells, dim, block, out),
    }
}

/// Folds two dimension-major tables (lower and upper bound rows) over an
/// entry-major cell block in one pass, sharing the index computation.
// The paired lo/hi tables and outputs are the kernel ABI, not a struct.
#[allow(clippy::too_many_arguments)]
pub fn fold_block2(
    op: FoldOp,
    lo_rows: &[f64],
    hi_rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    let n = out_lo.len();
    debug_assert_eq!(out_hi.len(), n);
    debug_assert_eq!(block.len(), n * dim);
    assert!(
        dim * cells <= i32::MAX as usize,
        "table too large for i32 gather indices"
    );
    match kernel() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: tier verified by runtime detection.
        Kernel::Avx2 => unsafe {
            fold_block2_avx2(op, lo_rows, hi_rows, cells, dim, block, out_lo, out_hi)
        },
        _ => {
            fold_block_scalar(op, lo_rows, cells, dim, block, out_lo);
            fold_block_scalar(op, hi_rows, cells, dim, block, out_hi);
        }
    }
}

fn fold_block_scalar(
    op: FoldOp,
    rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [f64],
) {
    for (j, key) in out.iter_mut().enumerate() {
        let cs = &block[j * dim..(j + 1) * dim];
        let mut acc = 0.0f64;
        for (i, &c) in cs.iter().enumerate() {
            acc = op.fold(acc, rows[i * cells + c as usize]);
        }
        *key = acc;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn fold_block_avx2(
    op: FoldOp,
    rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let rp = rows.as_ptr();
    let mut j = 0;
    while j + 4 <= n {
        let mut acc = _mm256_setzero_pd();
        for i in 0..dim {
            let base = (i * cells) as i32;
            let idx = _mm_set_epi32(
                base + block[(j + 3) * dim + i] as i32,
                base + block[(j + 2) * dim + i] as i32,
                base + block[(j + 1) * dim + i] as i32,
                base + block[j * dim + i] as i32,
            );
            let v = _mm256_i32gather_pd::<8>(rp, idx);
            acc = match op {
                FoldOp::Sum => _mm256_add_pd(acc, v),
                FoldOp::Max => _mm256_max_pd(acc, v),
            };
        }
        _mm256_storeu_pd(out.as_mut_ptr().add(j), acc);
        j += 4;
    }
    fold_block_scalar(op, rows, cells, dim, &block[j * dim..], &mut out[j..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.1")]
unsafe fn fold_block_sse41(
    op: FoldOp,
    rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut j = 0;
    while j + 2 <= n {
        let mut acc = _mm_setzero_pd();
        for i in 0..dim {
            let base = i * cells;
            let v = _mm_set_pd(
                rows[base + block[(j + 1) * dim + i] as usize],
                rows[base + block[j * dim + i] as usize],
            );
            acc = match op {
                FoldOp::Sum => _mm_add_pd(acc, v),
                FoldOp::Max => _mm_max_pd(acc, v),
            };
        }
        _mm_storeu_pd(out.as_mut_ptr().add(j), acc);
        j += 2;
    }
    fold_block_scalar(op, rows, cells, dim, &block[j * dim..], &mut out[j..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn fold_block2_avx2(
    op: FoldOp,
    lo_rows: &[f64],
    hi_rows: &[f64],
    cells: usize,
    dim: usize,
    block: &[u32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let n = out_lo.len();
    let lp = lo_rows.as_ptr();
    let hp = hi_rows.as_ptr();
    let mut j = 0;
    while j + 4 <= n {
        let mut alo = _mm256_setzero_pd();
        let mut ahi = _mm256_setzero_pd();
        for i in 0..dim {
            let base = (i * cells) as i32;
            let idx = _mm_set_epi32(
                base + block[(j + 3) * dim + i] as i32,
                base + block[(j + 2) * dim + i] as i32,
                base + block[(j + 1) * dim + i] as i32,
                base + block[j * dim + i] as i32,
            );
            let vlo = _mm256_i32gather_pd::<8>(lp, idx);
            let vhi = _mm256_i32gather_pd::<8>(hp, idx);
            match op {
                FoldOp::Sum => {
                    alo = _mm256_add_pd(alo, vlo);
                    ahi = _mm256_add_pd(ahi, vhi);
                }
                FoldOp::Max => {
                    alo = _mm256_max_pd(alo, vlo);
                    ahi = _mm256_max_pd(ahi, vhi);
                }
            }
        }
        _mm256_storeu_pd(out_lo.as_mut_ptr().add(j), alo);
        _mm256_storeu_pd(out_hi.as_mut_ptr().add(j), ahi);
        j += 4;
    }
    fold_block_scalar(op, lo_rows, cells, dim, &block[j * dim..], &mut out_lo[j..]);
    fold_block_scalar(op, hi_rows, cells, dim, &block[j * dim..], &mut out_hi[j..]);
}

// ---------------------------------------------------------------------------
// multi-query fold: DistTableBlock rows for one entry, all queries per load
// ---------------------------------------------------------------------------

/// Folds the query-minor block tables (`rows[(i * cells + c) * qpad + q]`)
/// for **one** entry: `out_lo[q]` / `out_hi[q]` receive query `q`'s
/// MINDIST / MAXDIST keys. Because the queries of one `(dim, cell)` pair are
/// contiguous, each dimension costs one plain vector load per 4 queries —
/// no gathers. `qpad` is a multiple of 4 and `out_*` have length `qpad`.
// The paired lo/hi tables and outputs are the kernel ABI, not a struct.
#[allow(clippy::too_many_arguments)]
pub fn fold_pair_multi(
    op: FoldOp,
    lo_rows: &[f64],
    hi_rows: &[f64],
    cells: usize,
    qpad: usize,
    entry_cells: &[u32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    debug_assert_eq!(qpad % 4, 0);
    debug_assert_eq!(out_lo.len(), qpad);
    debug_assert_eq!(out_hi.len(), qpad);
    #[cfg(target_arch = "x86_64")]
    if kernel() == Kernel::Avx2 {
        // SAFETY: tier verified by runtime detection.
        unsafe {
            fold_pair_multi_avx2(
                op,
                lo_rows,
                hi_rows,
                cells,
                qpad,
                entry_cells,
                out_lo,
                out_hi,
            )
        };
        return;
    }
    fold_pair_multi_scalar(
        op,
        lo_rows,
        hi_rows,
        cells,
        qpad,
        entry_cells,
        out_lo,
        out_hi,
    );
}

#[allow(clippy::too_many_arguments)]
fn fold_pair_multi_scalar(
    op: FoldOp,
    lo_rows: &[f64],
    hi_rows: &[f64],
    cells: usize,
    qpad: usize,
    entry_cells: &[u32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    out_lo.fill(0.0);
    out_hi.fill(0.0);
    for (i, &c) in entry_cells.iter().enumerate() {
        let base = (i * cells + c as usize) * qpad;
        for q in 0..qpad {
            out_lo[q] = op.fold(out_lo[q], lo_rows[base + q]);
            out_hi[q] = op.fold(out_hi[q], hi_rows[base + q]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn fold_pair_multi_avx2(
    op: FoldOp,
    lo_rows: &[f64],
    hi_rows: &[f64],
    cells: usize,
    qpad: usize,
    entry_cells: &[u32],
    out_lo: &mut [f64],
    out_hi: &mut [f64],
) {
    use std::arch::x86_64::*;
    let lp = lo_rows.as_ptr();
    let hp = hi_rows.as_ptr();
    let mut q0 = 0;
    while q0 < qpad {
        let mut alo = _mm256_setzero_pd();
        let mut ahi = _mm256_setzero_pd();
        for (i, &c) in entry_cells.iter().enumerate() {
            let base = (i * cells + c as usize) * qpad + q0;
            let vlo = _mm256_loadu_pd(lp.add(base));
            let vhi = _mm256_loadu_pd(hp.add(base));
            match op {
                FoldOp::Sum => {
                    alo = _mm256_add_pd(alo, vlo);
                    ahi = _mm256_add_pd(ahi, vhi);
                }
                FoldOp::Max => {
                    alo = _mm256_max_pd(alo, vlo);
                    ahi = _mm256_max_pd(ahi, vhi);
                }
            }
        }
        _mm256_storeu_pd(out_lo.as_mut_ptr().add(q0), alo);
        _mm256_storeu_pd(out_hi.as_mut_ptr().add(q0), ahi);
        q0 += 4;
    }
}

// ---------------------------------------------------------------------------
// flags: WindowTable AND-fold over an entry block
// ---------------------------------------------------------------------------

/// AND-folds the dimension-major window flags (`flags[i * cells + c]`) over
/// an entry-major cell block; `out[j]` is the surviving flag byte of entry
/// `j` (seed `seed`, usually `FLAG_INTERSECTS | FLAG_CONTAINED`). The fold
/// is order-independent, so lane order does not matter. `flags` must carry
/// at least 3 padding bytes past `dim * cells` for the 4-byte gathers.
pub fn and_fold_flags(
    seed: u8,
    flags: &[u8],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [u8],
) {
    let n = out.len();
    debug_assert_eq!(block.len(), n * dim);
    assert!(
        dim * cells <= i32::MAX as usize,
        "table too large for i32 gather indices"
    );
    #[cfg(target_arch = "x86_64")]
    if kernel() == Kernel::Avx2 && flags.len() >= dim * cells + 3 {
        // SAFETY: tier verified by runtime detection; flags has gather padding.
        unsafe { and_fold_flags_avx2(seed, flags, cells, dim, block, out) };
        return;
    }
    and_fold_flags_scalar(seed, flags, cells, dim, block, out);
}

fn and_fold_flags_scalar(
    seed: u8,
    flags: &[u8],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [u8],
) {
    for (j, o) in out.iter_mut().enumerate() {
        let cs = &block[j * dim..(j + 1) * dim];
        let mut all = seed;
        for (i, &c) in cs.iter().enumerate() {
            all &= flags[i * cells + c as usize];
            if all == 0 {
                break;
            }
        }
        *o = all;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn and_fold_flags_avx2(
    seed: u8,
    flags: &[u8],
    cells: usize,
    dim: usize,
    block: &[u32],
    out: &mut [u8],
) {
    use std::arch::x86_64::*;
    let n = out.len();
    let fp = flags.as_ptr();
    let byte = _mm256_set1_epi32(0xFF);
    let mut j = 0;
    while j + 8 <= n {
        let mut all = _mm256_set1_epi32(i32::from(seed));
        for i in 0..dim {
            let base = (i * cells) as i32;
            let idx = _mm256_set_epi32(
                base + block[(j + 7) * dim + i] as i32,
                base + block[(j + 6) * dim + i] as i32,
                base + block[(j + 5) * dim + i] as i32,
                base + block[(j + 4) * dim + i] as i32,
                base + block[(j + 3) * dim + i] as i32,
                base + block[(j + 2) * dim + i] as i32,
                base + block[(j + 1) * dim + i] as i32,
                base + block[j * dim + i] as i32,
            );
            let g = _mm256_and_si256(_mm256_i32gather_epi32::<1>(fp.cast(), idx), byte);
            all = _mm256_and_si256(all, g);
        }
        let mut tmp = [0i32; 8];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), all);
        for (l, t) in tmp.iter().enumerate() {
            out[j + l] = *t as u8;
        }
        j += 8;
    }
    and_fold_flags_scalar(seed, flags, cells, dim, &block[j * dim..], &mut out[j..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_detection_is_cached_and_nameable() {
        let k = kernel();
        assert_eq!(k, kernel());
        assert!(["avx2", "sse41", "scalar"].contains(&kernel_name()));
        assert!(k.code() <= 2);
    }

    #[test]
    fn override_clamps_to_detected_tier() {
        let detected = kernel();
        // Forcing scalar always works.
        assert_eq!(set_kernel_override(Some(Kernel::Scalar)), Kernel::Scalar);
        // Asking for a tier above the detected one keeps the detected tier.
        let forced = set_kernel_override(Some(Kernel::Avx2));
        assert!(forced.code() <= detected.code());
        assert_eq!(set_kernel_override(None), detected);
    }

    #[test]
    fn fold_block_matches_scalar_on_all_kernels() {
        let dim = 5;
        let cells = 16;
        let rows: Vec<f64> = (0..dim * cells).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let n = 13;
        let block: Vec<u32> = (0..n * dim)
            .map(|i| (i as u32 * 7 + 3) % cells as u32)
            .collect();
        for op in [FoldOp::Sum, FoldOp::Max] {
            let mut want = vec![0.0; n];
            fold_block_scalar(op, &rows, cells, dim, &block, &mut want);
            let mut got = vec![0.0; n];
            fold_block(op, &rows, cells, dim, &block, &mut got);
            for (a, b) in want.iter().zip(&got) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn and_fold_matches_scalar() {
        let dim = 3;
        let cells = 8;
        let flags: Vec<u8> = (0..dim * cells + 3).map(|i| (i % 4) as u8).collect();
        let n = 21;
        let block: Vec<u32> = (0..n * dim)
            .map(|i| (i as u32 * 5 + 1) % cells as u32)
            .collect();
        let mut want = vec![0u8; n];
        and_fold_flags_scalar(3, &flags, cells, dim, &block, &mut want);
        let mut got = vec![0u8; n];
        and_fold_flags(3, &flags, cells, dim, &block, &mut got);
        assert_eq!(want, got);
    }
}
