//! Quantized-domain distance kernels: per-(query, page-grid) lookup tables.
//!
//! The naive level-2 scan reconstructs every candidate's cell box as an
//! [`Mbr`] and recomputes MINDIST scalar by scalar. But for a fixed query
//! and a fixed page grid, the contribution of dimension `i` to MINDIST only
//! depends on the cell number `c` — a `dim × 2^g` table of precomputed
//! contributions reduces candidate filtering to `d` table lookups and `d`
//! folds, the asymmetric-distance idea from fast vector-quantization search
//! applied to the IQ-tree's per-page grids (and the VA-file's global one).
//!
//! Bit-for-bit contract: [`DistTable::mindist_key`] equals
//! `Metric::mindist_key(q, &grid.cell_box(cells))` exactly, and
//! [`DistTable::maxdist`] equals `Metric::maxdist(q, &grid.cell_box(cells))`
//! exactly, for the [`GridQuantizer`](crate::grid::GridQuantizer) built from
//! the same `(mbr, g)`. The tables therefore change query *speed*, never
//! query *answers* — the engine-conformance suite relies on this. The
//! guarantee holds because both paths round each cell edge through the same
//! `f32` cast and fold per-dimension contributions in index order with the
//! same [`Metric::combine`].
//!
//! For very fine grids (`2^g` large relative to the page population),
//! materializing the table costs more than it saves; the table then keeps
//! only the `O(dim)` grid parameters and computes contributions on the fly —
//! still allocation-free and still bit-identical, just without the lookup.

use crate::page::EXACT_BITS;
use crate::simd::{self, FoldOp};
use iq_geometry::{Mbr, Metric};

/// The SIMD fold op matching [`Metric::combine`] with seed `0.0`.
#[inline]
fn fold_op(metric: Metric) -> FoldOp {
    match metric {
        Metric::Euclidean | Metric::Manhattan => FoldOp::Sum,
        Metric::Maximum => FoldOp::Max,
    }
}

/// Hard cap on materialized cells per dimension (beyond this the lazy path
/// is used regardless of the population hint).
const MAX_TABLE_CELLS: usize = 1 << 16;

/// Per-(query, grid) distance-contribution tables for quantized-domain
/// filtering.
///
/// Reusable: [`DistTable::build`] refills the internal buffers without
/// allocating once their capacity has grown to the largest page seen, so a
/// scan over many pages is allocation-free in the steady state.
#[derive(Clone, Debug)]
pub struct DistTable {
    metric: Metric,
    dim: usize,
    /// Cells per dimension (`2^g`).
    cells: usize,
    /// Whether the per-cell rows are materialized.
    materialized: bool,
    /// `dim × cells` lower-bound contributions in key space (row per
    /// dimension): `metric.contrib(box_gap(q_i, cell_lb, cell_ub))`.
    lo: Vec<f64>,
    /// `dim × cells` farthest-corner contributions in key space:
    /// `metric.contrib(far_gap(q_i, cell_lb, cell_ub))`.
    hi: Vec<f64>,
    /// `dim × cells` center-distance contributions in key space — the
    /// classic ADC estimate `metric.contrib(|q_i - cell_center|)`.
    center: Vec<f64>,
    /// Query coordinates widened to f64.
    q: Vec<f64>,
    /// Grid lower bound per dimension, widened to f64.
    grid_lb: Vec<f64>,
    /// Cell width per dimension (0 for degenerate dimensions).
    width: Vec<f64>,
}

impl Default for DistTable {
    fn default() -> Self {
        Self::new()
    }
}

impl DistTable {
    /// Creates an empty table; call [`Self::build`] before querying it.
    pub fn new() -> Self {
        Self {
            metric: Metric::Euclidean,
            dim: 0,
            cells: 0,
            materialized: false,
            lo: Vec::new(),
            hi: Vec::new(),
            center: Vec::new(),
            q: Vec::new(),
            grid_lb: Vec::new(),
            width: Vec::new(),
        }
    }

    /// (Re)builds the table for query `q` over the grid `(mbr, g)`,
    /// reusing all internal buffers. `hint_n` is the expected number of
    /// candidates the table will filter (the page population): the per-cell
    /// rows are only materialized when the grid is coarse enough that the
    /// build cost amortizes over the scan; otherwise contributions are
    /// computed lazily — identical results either way.
    ///
    /// # Panics
    /// Panics if `g` is 0 or ≥ 32 (the exact case has no grid) or if the
    /// query dimension does not match the MBR.
    pub fn build(&mut self, mbr: &Mbr, g: u32, metric: Metric, q: &[f32], hint_n: usize) {
        assert!(
            (1..EXACT_BITS).contains(&g),
            "grid resolution must be in 1..=31 bits"
        );
        assert_eq!(q.len(), mbr.dim(), "query dimension mismatch");
        self.metric = metric;
        self.dim = q.len();
        let cells = 1usize << g;
        self.cells = cells;
        let cells_f = f64::from(1u32 << g);
        self.q.clear();
        self.q.extend(q.iter().map(|&x| f64::from(x)));
        self.grid_lb.clear();
        self.grid_lb
            .extend((0..self.dim).map(|i| f64::from(mbr.lb(i))));
        self.width.clear();
        self.width
            .extend((0..self.dim).map(|i| mbr.extent(i) / cells_f));
        // Materialize when the build cost (dim × cells) is small relative to
        // the lookups it replaces (hint_n × dim): coarse grids over populous
        // pages win big, fine grids over sparse pages fall back to the lazy
        // path.
        self.materialized = cells <= MAX_TABLE_CELLS && cells <= 8 * hint_n.max(1);
        self.lo.clear();
        self.hi.clear();
        self.center.clear();
        if !self.materialized {
            return;
        }
        self.lo.reserve(self.dim * cells);
        self.hi.reserve(self.dim * cells);
        self.center.reserve(self.dim * cells);
        for i in 0..self.dim {
            let qi = self.q[i];
            let lb = self.grid_lb[i];
            let w = self.width[i];
            for c in 0..cells {
                let cell_lb = f64::from((lb + c as f64 * w) as f32);
                let cell_ub = f64::from((lb + (c + 1) as f64 * w) as f32);
                self.lo
                    .push(metric.contrib(Metric::box_gap(qi, cell_lb, cell_ub)));
                self.hi
                    .push(metric.contrib(Metric::far_gap(qi, cell_lb, cell_ub)));
                let center = (cell_lb + cell_ub) * 0.5;
                self.center.push(metric.contrib((qi - center).abs()));
            }
        }
    }

    /// The metric the table was built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Whether the per-cell rows are materialized (true for coarse grids).
    pub fn is_materialized(&self) -> bool {
        self.materialized
    }

    /// The f32-rounded lower/upper edges of cell `c` in dimension `i` — the
    /// exact bounds [`GridQuantizer::cell_lb`](crate::grid::GridQuantizer)
    /// would produce.
    #[inline]
    fn cell_edges(&self, i: usize, c: u32) -> (f64, f64) {
        let lb = self.grid_lb[i];
        let w = self.width[i];
        (
            f64::from((lb + f64::from(c) * w) as f32),
            f64::from((lb + f64::from(c + 1) * w) as f32),
        )
    }

    /// MINDIST from the query to the cell box, in key space (squared for
    /// Euclidean) — bit-identical to
    /// `metric.mindist_key(q, &grid.cell_box(cells))`.
    #[inline]
    pub fn mindist_key(&self, cells: &[u32]) -> f64 {
        debug_assert_eq!(cells.len(), self.dim);
        let mut acc = 0.0f64;
        if self.materialized {
            for (i, &c) in cells.iter().enumerate() {
                acc = self
                    .metric
                    .combine(acc, self.lo[i * self.cells + c as usize]);
            }
        } else {
            for (i, &c) in cells.iter().enumerate() {
                let (lo, hi) = self.cell_edges(i, c);
                let gap = Metric::box_gap(self.q[i], lo, hi);
                acc = self.metric.combine(acc, self.metric.contrib(gap));
            }
        }
        acc
    }

    /// MAXDIST from the query to the cell box, in key space (squared for
    /// Euclidean) — the raw fold, before any square root. The VA-file's
    /// two-phase filter works entirely in key space and uses this directly.
    #[inline]
    pub fn maxdist_key(&self, cells: &[u32]) -> f64 {
        debug_assert_eq!(cells.len(), self.dim);
        let mut acc = 0.0f64;
        if self.materialized {
            for (i, &c) in cells.iter().enumerate() {
                acc = self
                    .metric
                    .combine(acc, self.hi[i * self.cells + c as usize]);
            }
        } else {
            for (i, &c) in cells.iter().enumerate() {
                let (lo, hi) = self.cell_edges(i, c);
                let gap = Metric::far_gap(self.q[i], lo, hi);
                acc = self.metric.combine(acc, self.metric.contrib(gap));
            }
        }
        acc
    }

    /// MAXDIST from the query to the cell box, as a *distance* (the
    /// Euclidean fold takes its square root at the end) — bit-identical to
    /// `metric.maxdist(q, &grid.cell_box(cells))`.
    #[inline]
    pub fn maxdist(&self, cells: &[u32]) -> f64 {
        self.metric.key_to_distance(self.maxdist_key(cells))
    }

    /// The asymmetric-distance (ADC) estimate in key space: the distance
    /// from the query to the candidate's cell *center*. Not a bound —
    /// useful as a cheap ranking estimate and for benchmarking the kernel.
    #[inline]
    pub fn center_key(&self, cells: &[u32]) -> f64 {
        debug_assert_eq!(cells.len(), self.dim);
        let mut acc = 0.0f64;
        if self.materialized {
            for (i, &c) in cells.iter().enumerate() {
                acc = self
                    .metric
                    .combine(acc, self.center[i * self.cells + c as usize]);
            }
        } else {
            for (i, &c) in cells.iter().enumerate() {
                let (lo, hi) = self.cell_edges(i, c);
                let center = (lo + hi) * 0.5;
                acc = self
                    .metric
                    .combine(acc, self.metric.contrib((self.q[i] - center).abs()));
            }
        }
        acc
    }

    /// Batch [`Self::mindist_key`] over an entry-major cell block
    /// (`block[j * dim..][..dim]` is entry `j`'s cells), one key per entry.
    /// Dispatches to the SIMD fold when the table is materialized;
    /// bit-identical to the per-entry scalar calls either way.
    pub fn mindist_keys(&self, block: &[u32], out: &mut Vec<f64>) {
        let n = block.len().checked_div(self.dim).unwrap_or(0);
        debug_assert_eq!(block.len(), n * self.dim);
        out.clear();
        out.resize(n, 0.0);
        if self.materialized {
            simd::fold_block(
                fold_op(self.metric),
                &self.lo,
                self.cells,
                self.dim,
                block,
                out,
            );
        } else {
            for (j, key) in out.iter_mut().enumerate() {
                *key = self.mindist_key(&block[j * self.dim..(j + 1) * self.dim]);
            }
        }
    }

    /// Batch MINDIST *and* MAXDIST keys over an entry-major cell block in
    /// one pass (the VA-file filter and the range scan need both bounds per
    /// entry). Bit-identical to [`Self::mindist_key`] / [`Self::maxdist_key`].
    pub fn bounds_keys(&self, block: &[u32], out_lo: &mut Vec<f64>, out_hi: &mut Vec<f64>) {
        let n = block.len().checked_div(self.dim).unwrap_or(0);
        debug_assert_eq!(block.len(), n * self.dim);
        out_lo.clear();
        out_lo.resize(n, 0.0);
        out_hi.clear();
        out_hi.resize(n, 0.0);
        if self.materialized {
            simd::fold_block2(
                fold_op(self.metric),
                &self.lo,
                &self.hi,
                self.cells,
                self.dim,
                block,
                out_lo,
                out_hi,
            );
        } else {
            for j in 0..n {
                let cs = &block[j * self.dim..(j + 1) * self.dim];
                out_lo[j] = self.mindist_key(cs);
                out_hi[j] = self.maxdist_key(cs);
            }
        }
    }
}

/// Maximum queries a [`DistTableBlock`] evaluates per page pass. Chosen so
/// the per-entry accumulator state (2 bounds × 16 queries of f64) stays in
/// registers; engine micro-batches are capped to this.
pub const MAX_BLOCK_QUERIES: usize = 16;

/// A [`DistTable`] over `Q` queries sharing one page grid — the multi-query
/// page-scan kernel.
///
/// Layout is query-minor: `lo[(i * cells + c) * qpad + q]`, with `qpad` the
/// query count rounded up to 4 f64 lanes, so evaluating one entry costs one
/// contiguous vector load per (dimension, 4 queries) — no gathers. Decode
/// cost (unpacking the page's cells) is amortized over all `Q` queries.
///
/// Bit-for-bit contract: query `q`'s keys equal the keys of a single-query
/// [`DistTable`] built from the same `(mbr, g, metric, q)` — same f32 cell
/// edges, same index-order fold.
#[derive(Clone, Debug, Default)]
pub struct DistTableBlock {
    metric: Metric,
    dim: usize,
    cells: usize,
    nq: usize,
    qpad: usize,
    /// `dim × cells × qpad` lower-bound contributions, query-minor.
    lo: Vec<f64>,
    /// `dim × cells × qpad` farthest-corner contributions, query-minor.
    hi: Vec<f64>,
}

impl DistTableBlock {
    /// Creates an empty block table; call [`Self::build`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// (Re)builds the block for `queries` over the grid `(mbr, g)`, reusing
    /// internal buffers. Returns `false` (leaving the block unusable for
    /// this grid) when the table should not be materialized — the caller
    /// then falls back to per-query [`DistTable`]s, which agree bit-for-bit.
    ///
    /// # Panics
    /// Panics if `g` is 0 or ≥ 32, `queries` is empty or longer than
    /// [`MAX_BLOCK_QUERIES`], or any query dimension mismatches the MBR.
    pub fn build(
        &mut self,
        mbr: &Mbr,
        g: u32,
        metric: Metric,
        queries: &[&[f32]],
        hint_n: usize,
    ) -> bool {
        assert!(
            (1..EXACT_BITS).contains(&g),
            "grid resolution must be in 1..=31 bits"
        );
        assert!(
            (1..=MAX_BLOCK_QUERIES).contains(&queries.len()),
            "1..={MAX_BLOCK_QUERIES} queries per block"
        );
        for q in queries {
            assert_eq!(q.len(), mbr.dim(), "query dimension mismatch");
        }
        self.metric = metric;
        self.dim = mbr.dim();
        let cells = 1usize << g;
        self.cells = cells;
        self.nq = queries.len();
        self.qpad = self.nq.div_ceil(4) * 4;
        // The build cost is Q× a single table's, but so are the lookups it
        // replaces — the same amortization rule applies per query.
        if cells > MAX_TABLE_CELLS || cells > 8 * hint_n.max(1) {
            self.lo.clear();
            self.hi.clear();
            return false;
        }
        let cells_f = f64::from(1u32 << g);
        self.lo.clear();
        self.lo.resize(self.dim * cells * self.qpad, 0.0);
        self.hi.clear();
        self.hi.resize(self.dim * cells * self.qpad, 0.0);
        for i in 0..self.dim {
            let lb = f64::from(mbr.lb(i));
            let w = mbr.extent(i) / cells_f;
            for c in 0..cells {
                let cell_lb = f64::from((lb + c as f64 * w) as f32);
                let cell_ub = f64::from((lb + (c + 1) as f64 * w) as f32);
                let base = (i * cells + c) * self.qpad;
                for (q, query) in queries.iter().enumerate() {
                    let qi = f64::from(query[i]);
                    self.lo[base + q] = metric.contrib(Metric::box_gap(qi, cell_lb, cell_ub));
                    self.hi[base + q] = metric.contrib(Metric::far_gap(qi, cell_lb, cell_ub));
                }
            }
        }
        true
    }

    /// Number of queries in the block.
    pub fn queries(&self) -> usize {
        self.nq
    }

    /// Query count padded to the f64 lane width — the required length of
    /// the `bounds_into` output slices.
    pub fn qpad(&self) -> usize {
        self.qpad
    }

    /// Dimensionality of the grid the block was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// MINDIST and MAXDIST keys of one entry against **all** queries:
    /// `out_lo[q]` / `out_hi[q]` for `q < queries()` (padding lanes hold
    /// garbage). Output slices must be `qpad()` long.
    #[inline]
    pub fn bounds_into(&self, cells: &[u32], out_lo: &mut [f64], out_hi: &mut [f64]) {
        debug_assert_eq!(cells.len(), self.dim);
        simd::fold_pair_multi(
            fold_op(self.metric),
            &self.lo,
            &self.hi,
            self.cells,
            self.qpad,
            cells,
            out_lo,
            out_hi,
        );
    }
}

/// How a grid cell relates to a query window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CellMatch {
    /// The cell box does not intersect the window: the candidate is out.
    Disjoint,
    /// The cell box overlaps the window boundary: the candidate needs exact
    /// refinement.
    Partial,
    /// The cell box lies entirely inside the window: the candidate is in,
    /// no refinement needed.
    Inside,
}

const FLAG_INTERSECTS: u8 = 1;
const FLAG_CONTAINED: u8 = 2;

/// Per-(window, grid) cell classification table for window queries — the
/// window-query analogue of [`DistTable`].
///
/// Bit-for-bit contract: [`WindowTable::classify`] reproduces exactly the
/// decisions `window.intersects(&cell_box)` / `window.contains_mbr(&cell_box)`
/// would make on the f32 cell box, because each per-dimension flag is
/// computed from the same f32-rounded cell edges and the conjunction over
/// dimensions is the same.
#[derive(Clone, Debug)]
pub struct WindowTable {
    dim: usize,
    cells: usize,
    materialized: bool,
    /// `dim × cells` flags (FLAG_INTERSECTS | FLAG_CONTAINED).
    flags: Vec<u8>,
    /// Window bounds (exact f32 values, widened for storage only).
    win_lb: Vec<f32>,
    win_ub: Vec<f32>,
    grid_lb: Vec<f64>,
    width: Vec<f64>,
}

impl Default for WindowTable {
    fn default() -> Self {
        Self::new()
    }
}

impl WindowTable {
    /// Creates an empty table; call [`Self::build`] before querying it.
    pub fn new() -> Self {
        Self {
            dim: 0,
            cells: 0,
            materialized: false,
            flags: Vec::new(),
            win_lb: Vec::new(),
            win_ub: Vec::new(),
            grid_lb: Vec::new(),
            width: Vec::new(),
        }
    }

    /// (Re)builds the classification table for `window` over the grid
    /// `(mbr, g)`, reusing internal buffers. See [`DistTable::build`] for
    /// the role of `hint_n`.
    ///
    /// # Panics
    /// Panics if `g` is 0 or ≥ 32 or the window dimension does not match.
    pub fn build(&mut self, mbr: &Mbr, g: u32, window: &Mbr, hint_n: usize) {
        assert!(
            (1..EXACT_BITS).contains(&g),
            "grid resolution must be in 1..=31 bits"
        );
        assert_eq!(window.dim(), mbr.dim(), "window dimension mismatch");
        self.dim = mbr.dim();
        let cells = 1usize << g;
        self.cells = cells;
        let cells_f = f64::from(1u32 << g);
        self.win_lb.clear();
        self.win_ub.clear();
        self.grid_lb.clear();
        self.width.clear();
        for i in 0..self.dim {
            self.win_lb.push(window.lb(i));
            self.win_ub.push(window.ub(i));
            self.grid_lb.push(f64::from(mbr.lb(i)));
            self.width.push(mbr.extent(i) / cells_f);
        }
        self.materialized = cells <= MAX_TABLE_CELLS && cells <= 8 * hint_n.max(1);
        self.flags.clear();
        if !self.materialized {
            return;
        }
        self.flags.reserve(self.dim * cells);
        for i in 0..self.dim {
            for c in 0..cells {
                let lb = self.grid_lb[i];
                let w = self.width[i];
                let cell_lb = (lb + c as f64 * w) as f32;
                let cell_ub = (lb + (c + 1) as f64 * w) as f32;
                self.flags.push(Self::dim_flags(
                    self.win_lb[i],
                    self.win_ub[i],
                    cell_lb,
                    cell_ub,
                ));
            }
        }
        // Gather padding: the SIMD batch classifier reads 4 bytes per flag.
        self.flags.extend_from_slice(&[0u8; 3]);
    }

    /// The per-dimension flags, matching `Mbr::intersects` /
    /// `Mbr::contains_mbr` comparisons exactly (closed intervals on f32).
    #[inline]
    fn dim_flags(win_lb: f32, win_ub: f32, cell_lb: f32, cell_ub: f32) -> u8 {
        let mut f = 0u8;
        if win_lb <= cell_ub && cell_lb <= win_ub {
            f |= FLAG_INTERSECTS;
        }
        if win_lb <= cell_lb && cell_ub <= win_ub {
            f |= FLAG_CONTAINED;
        }
        f
    }

    /// Classifies a candidate's cell vector against the window —
    /// bit-identical to testing `window.intersects(&grid.cell_box(cells))`
    /// and `window.contains_mbr(&grid.cell_box(cells))`.
    #[inline]
    pub fn classify(&self, cells: &[u32]) -> CellMatch {
        debug_assert_eq!(cells.len(), self.dim);
        let mut all = FLAG_INTERSECTS | FLAG_CONTAINED;
        if self.materialized {
            for (i, &c) in cells.iter().enumerate() {
                all &= self.flags[i * self.cells + c as usize];
                if all == 0 {
                    return CellMatch::Disjoint;
                }
            }
        } else {
            for (i, &c) in cells.iter().enumerate() {
                let lb = self.grid_lb[i];
                let w = self.width[i];
                let cell_lb = (lb + f64::from(c) * w) as f32;
                let cell_ub = (lb + f64::from(c + 1) * w) as f32;
                all &= Self::dim_flags(self.win_lb[i], self.win_ub[i], cell_lb, cell_ub);
                if all == 0 {
                    return CellMatch::Disjoint;
                }
            }
        }
        if all & FLAG_CONTAINED != 0 {
            CellMatch::Inside
        } else if all & FLAG_INTERSECTS != 0 {
            CellMatch::Partial
        } else {
            CellMatch::Disjoint
        }
    }

    /// Batch [`Self::classify`] over an entry-major cell block, one match
    /// per entry. `raw` is reusable scratch (resized to one byte per entry).
    /// The per-dimension AND-fold is order-independent, so the SIMD path
    /// (which skips the scalar early exit) is decision-identical.
    pub fn classify_batch(&self, block: &[u32], raw: &mut Vec<u8>, out: &mut Vec<CellMatch>) {
        let n = block.len().checked_div(self.dim).unwrap_or(0);
        debug_assert_eq!(block.len(), n * self.dim);
        out.clear();
        if !self.materialized {
            out.extend((0..n).map(|j| self.classify(&block[j * self.dim..(j + 1) * self.dim])));
            return;
        }
        raw.clear();
        raw.resize(n, 0);
        simd::and_fold_flags(
            FLAG_INTERSECTS | FLAG_CONTAINED,
            &self.flags,
            self.cells,
            self.dim,
            block,
            raw,
        );
        out.extend(raw.iter().map(|&all| {
            if all & FLAG_CONTAINED != 0 {
                CellMatch::Inside
            } else if all & FLAG_INTERSECTS != 0 {
                CellMatch::Partial
            } else {
                CellMatch::Disjoint
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridQuantizer;

    fn mbr2() -> Mbr {
        Mbr::from_bounds(vec![-1.0, 2.0], vec![3.0, 4.5])
    }

    #[test]
    fn mindist_matches_naive_on_a_grid_sweep() {
        let mbr = mbr2();
        let q = [0.4f32, 1.9];
        for metric in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
            for g in [1u32, 3, 5] {
                let grid = GridQuantizer::new(&mbr, g);
                let mut t = DistTable::new();
                t.build(&mbr, g, metric, &q, 1024);
                assert!(t.is_materialized());
                for a in 0..(1u32 << g) {
                    for b in 0..(1u32 << g) {
                        let cells = [a, b];
                        let naive = metric.mindist_key(&q, &grid.cell_box(&cells));
                        assert_eq!(t.mindist_key(&cells).to_bits(), naive.to_bits());
                        let naive_max = metric.maxdist(&q, &grid.cell_box(&cells));
                        assert_eq!(t.maxdist(&cells).to_bits(), naive_max.to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn lazy_path_matches_materialized() {
        let mbr = mbr2();
        let q = [2.7f32, 3.3];
        let g = 4;
        let mut hot = DistTable::new();
        hot.build(&mbr, g, Metric::Euclidean, &q, 1 << 20);
        let mut cold = DistTable::new();
        cold.build(&mbr, g, Metric::Euclidean, &q, 0);
        assert!(hot.is_materialized() && !cold.is_materialized());
        for a in 0..(1u32 << g) {
            for b in 0..(1u32 << g) {
                let cells = [a, b];
                assert_eq!(
                    hot.mindist_key(&cells).to_bits(),
                    cold.mindist_key(&cells).to_bits()
                );
                assert_eq!(
                    hot.maxdist(&cells).to_bits(),
                    cold.maxdist(&cells).to_bits()
                );
                assert_eq!(
                    hot.center_key(&cells).to_bits(),
                    cold.center_key(&cells).to_bits()
                );
            }
        }
    }

    #[test]
    fn center_key_brackets_between_bounds() {
        let mbr = mbr2();
        let q = [-3.0f32, 8.0];
        let mut t = DistTable::new();
        t.build(&mbr, 5, Metric::Euclidean, &q, 1024);
        for a in [0u32, 7, 31] {
            for b in [0u32, 16, 31] {
                let cells = [a, b];
                let lo = t.mindist_key(&cells);
                let hi = Metric::Euclidean.distance_to_key(t.maxdist(&cells));
                let adc = t.center_key(&cells);
                assert!(lo <= adc + 1e-9 && adc <= hi + 1e-9, "{lo} {adc} {hi}");
            }
        }
    }

    #[test]
    fn window_classification_matches_mbr_ops() {
        let mbr = mbr2();
        let window = Mbr::from_bounds(vec![0.0, 2.5], vec![1.5, 3.5]);
        for g in [1u32, 2, 4, 6] {
            let grid = GridQuantizer::new(&mbr, g);
            for hint in [1usize << 20, 0] {
                let mut t = WindowTable::new();
                t.build(&mbr, g, &window, hint);
                for a in 0..(1u32 << g) {
                    for b in 0..(1u32 << g) {
                        let cells = [a, b];
                        let cb = grid.cell_box(&cells);
                        let expect = if window.contains_mbr(&cb) {
                            CellMatch::Inside
                        } else if window.intersects(&cb) {
                            CellMatch::Partial
                        } else {
                            CellMatch::Disjoint
                        };
                        assert_eq!(t.classify(&cells), expect, "g={g} cells={cells:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn degenerate_dimension_is_handled() {
        let mbr = Mbr::from_bounds(vec![2.0, 0.0], vec![2.0, 1.0]);
        let grid = GridQuantizer::new(&mbr, 3);
        let q = [2.0f32, 0.6];
        let mut t = DistTable::new();
        t.build(&mbr, 3, Metric::Euclidean, &q, 64);
        for b in 0..8u32 {
            let cells = [0u32, b];
            let naive = Metric::Euclidean.mindist_key(&q, &grid.cell_box(&cells));
            assert_eq!(t.mindist_key(&cells).to_bits(), naive.to_bits());
        }
    }
}
