//! On-disk codecs for quantized data pages and exact (third-level) pages.
//!
//! A quantized data page occupies exactly one disk block. Its resolution `g`
//! (bits per dimension) is chosen per page by the IQ-tree's optimization:
//! the lower `g`, the more points fit. Layout (little endian):
//!
//! ```text
//! u16 count | u8 g | u8 reserved | count × ( u32 id | ceil(d·g/8) packed cells )
//! ```
//!
//! For `g == 32` ([`EXACT_BITS`]) the "cells" are the raw `f32` bit patterns
//! of the exact coordinates — the paper's special case in which the
//! third-level page is omitted.
//!
//! An exact page is a run of blocks holding `count × d` little-endian `f32`
//! coordinates (no ids — the id comes from the quantized entry).

use crate::bits::{BitReader, BitWriter};
use crate::grid::GridQuantizer;
use iq_geometry::Mbr;

/// Resolution marking the exact (32-bit float) representation.
pub const EXACT_BITS: u32 = 32;

const HEADER_BYTES: usize = 4;

/// Codec for quantized data pages of a fixed dimension and block size.
#[derive(Clone, Copy, Debug)]
pub struct QuantizedPageCodec {
    dim: usize,
    block_size: usize,
}

/// One decoded entry of a quantized page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedEntry {
    /// The point's identifier (its row in the original dataset).
    pub id: u32,
    /// Per-dimension cell numbers (or `f32` bit patterns when `g == 32`).
    pub cells: Vec<u32>,
}

/// A fully decoded quantized page.
#[derive(Clone, Debug)]
pub struct DecodedQuantPage {
    g: u32,
    dim: usize,
    ids: Vec<u32>,
    /// Flat `len × dim` cell matrix.
    cells: Vec<u32>,
}

impl DecodedQuantPage {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the page has no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Resolution in bits per dimension.
    pub fn bits(&self) -> u32 {
        self.g
    }

    /// Id of entry `i`.
    pub fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// Cell numbers of entry `i`.
    pub fn cells(&self, i: usize) -> &[u32] {
        &self.cells[i * self.dim..(i + 1) * self.dim]
    }

    /// For `g == 32` pages: the exact coordinates of entry `i`.
    pub fn exact_point(&self, i: usize) -> Option<Vec<f32>> {
        (self.g == EXACT_BITS).then(|| self.cells(i).iter().map(|&b| f32::from_bits(b)).collect())
    }
}

impl QuantizedPageCodec {
    /// Creates a codec.
    ///
    /// # Panics
    /// Panics if the block cannot hold at least one entry at the exact
    /// resolution.
    pub fn new(dim: usize, block_size: usize) -> Self {
        let codec = Self { dim, block_size };
        assert!(
            codec.capacity(EXACT_BITS) >= 1,
            "block size {block_size} too small for dimension {dim}"
        );
        codec
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Bytes one entry occupies at resolution `g` (id + byte-aligned packed
    /// cells).
    pub fn entry_bytes(&self, g: u32) -> usize {
        assert!((1..=EXACT_BITS).contains(&g));
        4 + (self.dim * g as usize).div_ceil(8)
    }

    /// Maximum number of entries a page holds at resolution `g` — the
    /// capacity that drives the split/quantize trade-off.
    pub fn capacity(&self, g: u32) -> usize {
        (self.block_size - HEADER_BYTES) / self.entry_bytes(g)
    }

    /// The finest resolution at which `count` points still fit in one page,
    /// or `None` if they do not fit even at 1 bit.
    pub fn max_bits_for(&self, count: usize) -> Option<u32> {
        if count == 0 {
            return Some(EXACT_BITS);
        }
        (1..=EXACT_BITS).rev().find(|&g| self.capacity(g) >= count)
    }

    /// Encodes a page. `points` yields `(id, coords)` pairs; for `g < 32`
    /// the coordinates are quantized relative to `mbr`.
    ///
    /// # Panics
    /// Panics if more points are supplied than [`Self::capacity`] allows.
    pub fn encode<'a>(
        &self,
        mbr: &Mbr,
        g: u32,
        points: impl ExactSizeIterator<Item = (u32, &'a [f32])>,
    ) -> Vec<u8> {
        let n = points.len();
        assert!(
            n <= self.capacity(g),
            "{n} entries exceed capacity at {g} bits"
        );
        assert!(n <= u16::MAX as usize);
        let mut out = Vec::with_capacity(self.block_size);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        out.push(g as u8);
        out.push(0);
        let grid = (g < EXACT_BITS).then(|| GridQuantizer::new(mbr, g));
        for (id, p) in points {
            debug_assert_eq!(p.len(), self.dim);
            out.extend_from_slice(&id.to_le_bytes());
            match &grid {
                Some(grid) => {
                    let mut w = BitWriter::new();
                    for (i, &x) in p.iter().enumerate() {
                        w.write(grid.cell_of(i, x), g);
                    }
                    let packed = w.into_bytes();
                    debug_assert_eq!(packed.len(), (self.dim * g as usize).div_ceil(8));
                    out.extend_from_slice(&packed);
                }
                None => {
                    for &x in p {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        out.resize(self.block_size, 0);
        out
    }

    /// Decodes a page previously produced by [`Self::encode`].
    pub fn decode(&self, block: &[u8]) -> DecodedQuantPage {
        assert!(block.len() >= HEADER_BYTES);
        let n = u16::from_le_bytes([block[0], block[1]]) as usize;
        let g = u32::from(block[2]);
        assert!((1..=EXACT_BITS).contains(&g), "corrupt page: g = {g}");
        let entry = self.entry_bytes(g);
        assert!(
            HEADER_BYTES + n * entry <= block.len(),
            "corrupt page: overflow"
        );
        let mut ids = Vec::with_capacity(n);
        let mut cells = Vec::with_capacity(n * self.dim);
        for e in 0..n {
            let off = HEADER_BYTES + e * entry;
            ids.push(u32::from_le_bytes(
                block[off..off + 4].try_into().expect("4 bytes"),
            ));
            let mut r = BitReader::new(&block[off + 4..off + entry]);
            for _ in 0..self.dim {
                cells.push(r.read(g));
            }
        }
        DecodedQuantPage {
            g,
            dim: self.dim,
            ids,
            cells,
        }
    }
}

/// Codec for exact (third-level) pages: flat `f32` coordinate rows.
#[derive(Clone, Copy, Debug)]
pub struct ExactPageCodec {
    dim: usize,
}

impl ExactPageCodec {
    /// Creates a codec for dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }

    /// Bytes per point.
    pub fn point_bytes(&self) -> usize {
        4 * self.dim
    }

    /// Encodes coordinate rows into a byte buffer.
    pub fn encode<'a>(&self, points: impl Iterator<Item = &'a [f32]>) -> Vec<u8> {
        let mut out = Vec::new();
        for p in points {
            debug_assert_eq!(p.len(), self.dim);
            for &x in p {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Decodes point `i` from a page buffer that starts at point 0.
    pub fn decode_point(&self, page: &[u8], i: usize) -> Vec<f32> {
        let off = i * self.point_bytes();
        self.decode_point_at(&page[off..off + self.point_bytes()])
    }

    /// Decodes one point from exactly [`Self::point_bytes`] bytes.
    pub fn decode_point_at(&self, bytes: &[u8]) -> Vec<f32> {
        assert_eq!(bytes.len(), self.point_bytes());
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect()
    }

    /// Which blocks of a page (given the page's starting block) hold point
    /// `i`: returns `(first_block, nblocks, byte_offset_in_first_block)`.
    /// A point can straddle a block boundary.
    pub fn point_span(&self, i: usize, block_size: usize) -> (u64, u64, usize) {
        let start_byte = i * self.point_bytes();
        let end_byte = start_byte + self.point_bytes();
        let first = (start_byte / block_size) as u64;
        let last = ((end_byte - 1) / block_size) as u64;
        (first, last - first + 1, start_byte % block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbr(d: usize) -> Mbr {
        Mbr::from_bounds(vec![0.0; d], vec![1.0; d])
    }

    #[test]
    fn capacity_decreases_with_bits() {
        let c = QuantizedPageCodec::new(16, 8192);
        let caps: Vec<usize> = (1..=32).map(|g| c.capacity(g)).collect();
        assert!(caps.windows(2).all(|w| w[0] >= w[1]));
        // d = 16: entry at 1 bit = 4 + 2 = 6 bytes -> (8192-4)/6 = 1364.
        assert_eq!(c.capacity(1), 1364);
        // At 32 bits: 4 + 64 = 68 bytes -> 120.
        assert_eq!(c.capacity(32), 120);
    }

    #[test]
    fn max_bits_for_counts() {
        let c = QuantizedPageCodec::new(16, 8192);
        assert_eq!(c.max_bits_for(0), Some(32));
        assert_eq!(c.max_bits_for(1), Some(32));
        assert_eq!(c.max_bits_for(120), Some(32));
        assert_eq!(c.max_bits_for(121), Some(31));
        assert_eq!(c.max_bits_for(1364), Some(1));
        assert_eq!(c.max_bits_for(1365), None);
    }

    #[test]
    fn encode_decode_quantized() {
        let c = QuantizedPageCodec::new(3, 256);
        let m = mbr(3);
        let pts: Vec<(u32, Vec<f32>)> = vec![(7, vec![0.1, 0.9, 0.5]), (42, vec![0.0, 1.0, 0.25])];
        let block = c.encode(&m, 4, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert_eq!(block.len(), 256);
        let dec = c.decode(&block);
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.bits(), 4);
        assert_eq!(dec.id(0), 7);
        assert_eq!(dec.id(1), 42);
        let grid = GridQuantizer::new(&m, 4);
        for (i, (_, p)) in pts.iter().enumerate() {
            assert_eq!(dec.cells(i), grid.encode(p).as_slice());
            assert!(grid.cell_box(dec.cells(i)).contains_point(p));
        }
    }

    #[test]
    fn exact_special_case_roundtrips_bitexact() {
        let c = QuantizedPageCodec::new(2, 128);
        let m = mbr(2);
        let p = [0.123_456_79f32, -5.5];
        let block = c.encode(&m, EXACT_BITS, [(9u32, &p[..])].into_iter());
        let dec = c.decode(&block);
        assert_eq!(dec.exact_point(0).expect("exact page"), p.to_vec());
        // Non-exact pages report None.
        let block = c.encode(&m, 8, [(9u32, &[0.5f32, 0.5][..])].into_iter());
        assert_eq!(c.decode(&block).exact_point(0), None);
    }

    #[test]
    fn exact_page_codec_roundtrip() {
        let c = ExactPageCodec::new(4);
        let rows: Vec<Vec<f32>> = vec![vec![1., 2., 3., 4.], vec![5., 6., 7., 8.]];
        let bytes = c.encode(rows.iter().map(|r| r.as_slice()));
        assert_eq!(bytes.len(), 2 * 16);
        assert_eq!(c.decode_point(&bytes, 0), rows[0]);
        assert_eq!(c.decode_point(&bytes, 1), rows[1]);
    }

    #[test]
    fn point_span_straddles_blocks() {
        let c = ExactPageCodec::new(4); // 16 bytes/point
                                        // Block size 24: point 1 occupies bytes 16..32 -> blocks 0..=1.
        assert_eq!(c.point_span(0, 24), (0, 1, 0));
        assert_eq!(c.point_span(1, 24), (0, 2, 16));
        assert_eq!(c.point_span(3, 24), (2, 1, 0));
    }

    proptest! {
        /// Every decoded cell box contains its original point, for random
        /// pages at random resolutions.
        #[test]
        fn prop_quant_roundtrip(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f32..1.0, 5), 1..20),
            g in 1u32..12,
        ) {
            let c = QuantizedPageCodec::new(5, 2048);
            let m = mbr(5);
            let block = c.encode(
                &m,
                g,
                pts.iter().enumerate().map(|(i, p)| (i as u32, p.as_slice())),
            );
            let dec = c.decode(&block);
            prop_assert_eq!(dec.len(), pts.len());
            let grid = GridQuantizer::new(&m, g);
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(dec.id(i) as usize, i);
                prop_assert!(grid.cell_box(dec.cells(i)).contains_point(p));
            }
        }
    }
}
