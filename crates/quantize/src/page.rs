//! On-disk codecs for quantized data pages and exact (third-level) pages.
//!
//! A quantized data page occupies exactly one disk block. Its resolution `g`
//! (bits per dimension) is chosen per page by the IQ-tree's optimization:
//! the lower `g`, the more points fit. Layout (little endian):
//!
//! ```text
//! u16 count | u8 g | u8 reserved | count × ( u32 id | ceil(d·g/8) packed cells )
//! ```
//!
//! For `g == 32` ([`EXACT_BITS`]) the "cells" are the raw `f32` bit patterns
//! of the exact coordinates — the paper's special case in which the
//! third-level page is omitted.
//!
//! An exact page is a run of blocks holding `count` little-endian entries
//! of `u32 id | d × f32` coordinates. The id is stored redundantly with the
//! quantized entry on purpose: when a level-2 block fails its checksum, the
//! level-3 page alone can answer the query (and vice versa), so one corrupt
//! block degrades precision or cost but never loses the point.

use crate::bits::{unpack_cells, BitWriter};
use crate::grid::GridQuantizer;
use iq_geometry::Mbr;
use iq_storage::{IqError, IqResult};

/// Resolution marking the exact (32-bit float) representation.
pub const EXACT_BITS: u32 = 32;

const HEADER_BYTES: usize = 4;

/// Codec for quantized data pages of a fixed dimension and block size.
#[derive(Clone, Copy, Debug)]
pub struct QuantizedPageCodec {
    dim: usize,
    block_size: usize,
}

/// One decoded entry of a quantized page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuantizedEntry {
    /// The point's identifier (its row in the original dataset).
    pub id: u32,
    /// Per-dimension cell numbers (or `f32` bit patterns when `g == 32`).
    pub cells: Vec<u32>,
}

/// A fully decoded quantized page.
#[derive(Clone, Debug)]
pub struct DecodedQuantPage {
    g: u32,
    dim: usize,
    ids: Vec<u32>,
    /// Flat `len × dim` cell matrix.
    cells: Vec<u32>,
}

impl DecodedQuantPage {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the page has no entries.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Resolution in bits per dimension.
    pub fn bits(&self) -> u32 {
        self.g
    }

    /// Id of entry `i`.
    pub fn id(&self, i: usize) -> u32 {
        self.ids[i]
    }

    /// Cell numbers of entry `i`.
    pub fn cells(&self, i: usize) -> &[u32] {
        &self.cells[i * self.dim..(i + 1) * self.dim]
    }

    /// For `g == 32` pages: the exact coordinates of entry `i`.
    pub fn exact_point(&self, i: usize) -> Option<Vec<f32>> {
        (self.g == EXACT_BITS).then(|| self.cells(i).iter().map(|&b| f32::from_bits(b)).collect())
    }
}

impl QuantizedPageCodec {
    /// Creates a codec.
    ///
    /// # Panics
    /// Panics if the block cannot hold at least one entry at the exact
    /// resolution.
    pub fn new(dim: usize, block_size: usize) -> Self {
        let codec = Self { dim, block_size };
        assert!(
            codec.capacity(EXACT_BITS) >= 1,
            "block size {block_size} too small for dimension {dim}"
        );
        codec
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Bytes one entry occupies at resolution `g` (id + byte-aligned packed
    /// cells).
    pub fn entry_bytes(&self, g: u32) -> usize {
        assert!((1..=EXACT_BITS).contains(&g));
        4 + (self.dim * g as usize).div_ceil(8)
    }

    /// Maximum number of entries a page holds at resolution `g` — the
    /// capacity that drives the split/quantize trade-off.
    pub fn capacity(&self, g: u32) -> usize {
        (self.block_size - HEADER_BYTES) / self.entry_bytes(g)
    }

    /// The finest resolution at which `count` points still fit in one page,
    /// or `None` if they do not fit even at 1 bit.
    pub fn max_bits_for(&self, count: usize) -> Option<u32> {
        if count == 0 {
            return Some(EXACT_BITS);
        }
        (1..=EXACT_BITS).rev().find(|&g| self.capacity(g) >= count)
    }

    /// Encodes a page. `points` yields `(id, coords)` pairs; for `g < 32`
    /// the coordinates are quantized relative to `mbr`.
    ///
    /// # Panics
    /// Panics if more points are supplied than [`Self::capacity`] allows.
    pub fn encode<'a>(
        &self,
        mbr: &Mbr,
        g: u32,
        points: impl ExactSizeIterator<Item = (u32, &'a [f32])>,
    ) -> Vec<u8> {
        let n = points.len();
        assert!(
            n <= self.capacity(g),
            "{n} entries exceed capacity at {g} bits"
        );
        assert!(n <= u16::MAX as usize);
        let mut out = Vec::with_capacity(self.block_size);
        out.extend_from_slice(&(n as u16).to_le_bytes());
        out.push(g as u8);
        out.push(0);
        let grid = (g < EXACT_BITS).then(|| GridQuantizer::new(mbr, g));
        for (id, p) in points {
            debug_assert_eq!(p.len(), self.dim);
            out.extend_from_slice(&id.to_le_bytes());
            match &grid {
                Some(grid) => {
                    let mut w = BitWriter::new();
                    for (i, &x) in p.iter().enumerate() {
                        w.write(grid.cell_of(i, x), g);
                    }
                    let packed = w.into_bytes();
                    debug_assert_eq!(packed.len(), (self.dim * g as usize).div_ceil(8));
                    out.extend_from_slice(&packed);
                }
                None => {
                    for &x in p {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        out.resize(self.block_size, 0);
        out
    }

    /// Validates a block's header once and returns a zero-copy [`QuantPageView`]
    /// over its entries. A flipped bit that survives the checksum layer (or a
    /// raw device without one) surfaces as [`IqError::Decode`], never as a
    /// panic or an out-of-bounds read. After validation, per-entry decoding
    /// needs no further bounds checks: every entry row lies inside the view
    /// by construction.
    pub fn try_view<'a>(&self, block: &'a [u8]) -> IqResult<QuantPageView<'a>> {
        if block.len() < HEADER_BYTES {
            return Err(IqError::Decode {
                detail: format!("quantized page of {} bytes has no header", block.len()),
            });
        }
        let n = u16::from_le_bytes([block[0], block[1]]) as usize;
        let g = u32::from(block[2]);
        if !(1..=EXACT_BITS).contains(&g) {
            return Err(IqError::Decode {
                detail: format!("quantized page resolution g = {g} outside 1..=32"),
            });
        }
        let entry = self.entry_bytes(g);
        if HEADER_BYTES + n * entry > block.len() {
            return Err(IqError::Decode {
                detail: format!(
                    "quantized page claims {n} entries of {entry} bytes in a {}-byte block",
                    block.len()
                ),
            });
        }
        Ok(QuantPageView {
            g,
            dim: self.dim,
            entry,
            body: &block[HEADER_BYTES..HEADER_BYTES + n * entry],
        })
    }

    /// Decodes a page previously produced by [`Self::encode`] into owned
    /// vectors. Prefer [`Self::try_view`] plus
    /// [`QuantPageView::for_each_entry`] in hot paths — this form allocates.
    pub fn try_decode(&self, block: &[u8]) -> IqResult<DecodedQuantPage> {
        let view = self.try_view(block)?;
        let n = view.len();
        let mut ids = Vec::with_capacity(n);
        let mut cells = vec![0u32; n * self.dim];
        for e in 0..n {
            ids.push(view.id(e));
            view.cells_into(e, &mut cells[e * self.dim..(e + 1) * self.dim]);
        }
        Ok(DecodedQuantPage {
            g: view.bits(),
            dim: self.dim,
            ids,
            cells,
        })
    }

    /// [`Self::try_decode`] for callers that trust the block (freshly
    /// encoded in memory, or verified by the checksum layer).
    ///
    /// # Panics
    /// Panics if the page is corrupt.
    pub fn decode(&self, block: &[u8]) -> DecodedQuantPage {
        self.try_decode(block).expect("corrupt quantized page")
    }
}

/// A zero-copy, header-validated view of a quantized page.
///
/// Produced by [`QuantizedPageCodec::try_view`], which checks the block
/// length against the claimed entry count exactly once; every accessor here
/// then decodes straight from precomputed row offsets — no per-entry
/// `BitReader` construction, no per-entry bounds checks, no allocation.
#[derive(Clone, Copy, Debug)]
pub struct QuantPageView<'a> {
    g: u32,
    dim: usize,
    /// Bytes per entry row (id + byte-aligned packed cells).
    entry: usize,
    /// Exactly `len × entry` bytes of entry rows.
    body: &'a [u8],
}

impl QuantPageView<'_> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.body.len() / self.entry
    }

    /// Whether the page has no entries.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Resolution in bits per dimension.
    pub fn bits(&self) -> u32 {
        self.g
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Id of entry `i`.
    #[inline]
    pub fn id(&self, i: usize) -> u32 {
        let off = i * self.entry;
        u32::from_le_bytes(self.body[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Decodes the cell numbers of entry `i` into `out` (length `dim`).
    /// Because every entry's packed cells start at a byte boundary, the
    /// common widths hit the unrolled fast paths of
    /// [`unpack_cells`].
    #[inline]
    pub fn cells_into(&self, i: usize, out: &mut [u32]) {
        debug_assert_eq!(out.len(), self.dim);
        let off = i * self.entry;
        unpack_cells(&self.body[off + 4..off + self.entry], self.g, out);
    }

    /// Streams every `(id, cells)` entry through `f`, decoding into the
    /// caller's reusable `scratch` buffer: zero heap allocations in the
    /// steady state (the scratch grows once to `dim` and is reused).
    pub fn for_each_entry(&self, scratch: &mut Vec<u32>, mut f: impl FnMut(u32, &[u32])) {
        scratch.resize(self.dim, 0);
        for e in 0..self.len() {
            let id = self.id(e);
            self.cells_into(e, &mut scratch[..]);
            f(id, &scratch[..]);
        }
    }

    /// Decodes **all** entries' cells into an entry-major `len × dim` block
    /// (`out[e * dim..][..dim]` is entry `e`) via the SIMD unpack kernel —
    /// the batch form of [`Self::cells_into`], identical bit patterns. `out`
    /// is a reusable scratch; it is cleared and resized.
    pub fn unpack_all(&self, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.len() * self.dim, 0);
        if self.dim == 0 || self.body.is_empty() {
            return;
        }
        crate::simd::unpack_block(self.body, self.entry, 4, self.g, self.dim, out);
    }

    /// Multi-query scan: decodes the page once and evaluates every entry
    /// against **all** queries of `block`, calling
    /// `f(slot, id, lo_keys, hi_keys)` with per-query MINDIST / MAXDIST
    /// keys (`lo_keys[q]` for query `q < block.queries()`). `cells` and
    /// `lo`/`hi` are reusable scratch buffers. Decode cost is paid once for
    /// the whole micro-batch; keys are bit-identical to a per-query
    /// [`crate::DistTable`] over the same grid.
    pub fn for_each_entry_multi(
        &self,
        block: &crate::table::DistTableBlock,
        cells: &mut Vec<u32>,
        lo: &mut Vec<f64>,
        hi: &mut Vec<f64>,
        mut f: impl FnMut(usize, u32, &[f64], &[f64]),
    ) {
        debug_assert_eq!(block.dim(), self.dim);
        self.unpack_all(cells);
        let qpad = block.qpad();
        let nq = block.queries();
        lo.clear();
        lo.resize(qpad, 0.0);
        hi.clear();
        hi.resize(qpad, 0.0);
        for e in 0..self.len() {
            block.bounds_into(&cells[e * self.dim..(e + 1) * self.dim], lo, hi);
            f(e, self.id(e), &lo[..nq], &hi[..nq]);
        }
    }
}

/// Codec for exact (third-level) pages: rows of `u32 id | d × f32`
/// coordinates. Storing the id here (redundantly with level 2) makes the
/// exact page self-contained, which is what the corruption-fallback path
/// relies on.
#[derive(Clone, Copy, Debug)]
pub struct ExactPageCodec {
    dim: usize,
}

impl ExactPageCodec {
    /// Creates a codec for dimension `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { dim }
    }

    /// Bytes per entry (id + coordinates).
    pub fn entry_bytes(&self) -> usize {
        4 + 4 * self.dim
    }

    /// Encodes `(id, coordinates)` rows into a byte buffer.
    pub fn encode<'a>(&self, entries: impl Iterator<Item = (u32, &'a [f32])>) -> Vec<u8> {
        let mut out = Vec::new();
        for (id, p) in entries {
            debug_assert_eq!(p.len(), self.dim);
            out.extend_from_slice(&id.to_le_bytes());
            for &x in p {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Decodes entry `i` from a page buffer that starts at entry 0.
    pub fn decode_entry(&self, page: &[u8], i: usize) -> (u32, Vec<f32>) {
        let off = i * self.entry_bytes();
        self.decode_entry_at(&page[off..off + self.entry_bytes()])
    }

    /// Decodes one entry from exactly [`Self::entry_bytes`] bytes.
    pub fn decode_entry_at(&self, bytes: &[u8]) -> (u32, Vec<f32>) {
        self.try_decode_entry_at(bytes)
            .expect("corrupt exact entry")
    }

    /// Fallible form of [`Self::decode_entry_at`] for the degraded read
    /// path (a truncated region surfaces as [`IqError::Decode`]).
    pub fn try_decode_entry_at(&self, bytes: &[u8]) -> IqResult<(u32, Vec<f32>)> {
        let mut coords = vec![0.0f32; self.dim];
        let id = self.try_decode_entry_into(bytes, &mut coords)?;
        Ok((id, coords))
    }

    /// Decodes one entry into a caller-provided coordinate buffer of length
    /// `dim`, returning the entry's id — the allocation-free workhorse of
    /// the exact-page and degraded-fallback scan loops.
    ///
    /// # Panics
    /// Panics if the entry is corrupt (see [`Self::try_decode_entry_into`]).
    pub fn decode_entry_into(&self, bytes: &[u8], out: &mut [f32]) -> u32 {
        self.try_decode_entry_into(bytes, out)
            .expect("corrupt exact entry")
    }

    /// Fallible form of [`Self::decode_entry_into`]: a truncated region
    /// surfaces as [`IqError::Decode`].
    ///
    /// # Panics
    /// Panics if `out.len() != dim` (programmer error, not a data error).
    pub fn try_decode_entry_into(&self, bytes: &[u8], out: &mut [f32]) -> IqResult<u32> {
        assert_eq!(
            out.len(),
            self.dim,
            "coordinate buffer must have length dim"
        );
        if bytes.len() != self.entry_bytes() {
            return Err(IqError::Decode {
                detail: format!(
                    "exact entry of {} bytes, expected {}",
                    bytes.len(),
                    self.entry_bytes()
                ),
            });
        }
        let id = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes"));
        for (x, c) in out.iter_mut().zip(bytes[4..].chunks_exact(4)) {
            *x = f32::from_le_bytes(c.try_into().expect("4 bytes"));
        }
        Ok(id)
    }

    /// Which blocks of a page (given the page's starting block) hold entry
    /// `i`: returns `(first_block, nblocks, byte_offset_in_first_block)`.
    /// An entry can straddle a block boundary.
    pub fn entry_span(&self, i: usize, block_size: usize) -> (u64, u64, usize) {
        let start_byte = i * self.entry_bytes();
        let end_byte = start_byte + self.entry_bytes();
        let first = (start_byte / block_size) as u64;
        let last = ((end_byte - 1) / block_size) as u64;
        (first, last - first + 1, start_byte % block_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mbr(d: usize) -> Mbr {
        Mbr::from_bounds(vec![0.0; d], vec![1.0; d])
    }

    #[test]
    fn capacity_decreases_with_bits() {
        let c = QuantizedPageCodec::new(16, 8192);
        let caps: Vec<usize> = (1..=32).map(|g| c.capacity(g)).collect();
        assert!(caps.windows(2).all(|w| w[0] >= w[1]));
        // d = 16: entry at 1 bit = 4 + 2 = 6 bytes -> (8192-4)/6 = 1364.
        assert_eq!(c.capacity(1), 1364);
        // At 32 bits: 4 + 64 = 68 bytes -> 120.
        assert_eq!(c.capacity(32), 120);
    }

    #[test]
    fn max_bits_for_counts() {
        let c = QuantizedPageCodec::new(16, 8192);
        assert_eq!(c.max_bits_for(0), Some(32));
        assert_eq!(c.max_bits_for(1), Some(32));
        assert_eq!(c.max_bits_for(120), Some(32));
        assert_eq!(c.max_bits_for(121), Some(31));
        assert_eq!(c.max_bits_for(1364), Some(1));
        assert_eq!(c.max_bits_for(1365), None);
    }

    #[test]
    fn encode_decode_quantized() {
        let c = QuantizedPageCodec::new(3, 256);
        let m = mbr(3);
        let pts: Vec<(u32, Vec<f32>)> = vec![(7, vec![0.1, 0.9, 0.5]), (42, vec![0.0, 1.0, 0.25])];
        let block = c.encode(&m, 4, pts.iter().map(|(id, p)| (*id, p.as_slice())));
        assert_eq!(block.len(), 256);
        let dec = c.decode(&block);
        assert_eq!(dec.len(), 2);
        assert_eq!(dec.bits(), 4);
        assert_eq!(dec.id(0), 7);
        assert_eq!(dec.id(1), 42);
        let grid = GridQuantizer::new(&m, 4);
        for (i, (_, p)) in pts.iter().enumerate() {
            assert_eq!(dec.cells(i), grid.encode(p).as_slice());
            assert!(grid.cell_box(dec.cells(i)).contains_point(p));
        }
    }

    #[test]
    fn exact_special_case_roundtrips_bitexact() {
        let c = QuantizedPageCodec::new(2, 128);
        let m = mbr(2);
        let p = [0.123_456_79f32, -5.5];
        let block = c.encode(&m, EXACT_BITS, [(9u32, &p[..])].into_iter());
        let dec = c.decode(&block);
        assert_eq!(dec.exact_point(0).expect("exact page"), p.to_vec());
        // Non-exact pages report None.
        let block = c.encode(&m, 8, [(9u32, &[0.5f32, 0.5][..])].into_iter());
        assert_eq!(c.decode(&block).exact_point(0), None);
    }

    #[test]
    fn exact_page_codec_roundtrip() {
        let c = ExactPageCodec::new(4);
        let rows: Vec<(u32, Vec<f32>)> =
            vec![(11, vec![1., 2., 3., 4.]), (97, vec![5., 6., 7., 8.])];
        let bytes = c.encode(rows.iter().map(|(id, r)| (*id, r.as_slice())));
        assert_eq!(bytes.len(), 2 * 20);
        assert_eq!(c.decode_entry(&bytes, 0), (11, rows[0].1.clone()));
        assert_eq!(c.decode_entry(&bytes, 1), (97, rows[1].1.clone()));
    }

    #[test]
    fn truncated_exact_entry_is_an_error() {
        let c = ExactPageCodec::new(4);
        let err = c.try_decode_entry_at(&[0u8; 7]).unwrap_err();
        assert!(err.is_corruption());
    }

    #[test]
    fn entry_span_straddles_blocks() {
        let c = ExactPageCodec::new(4); // 20 bytes/entry
                                        // Block size 24: entry 1 occupies bytes 20..40 -> blocks 0..=1.
        assert_eq!(c.entry_span(0, 24), (0, 1, 0));
        assert_eq!(c.entry_span(1, 24), (0, 2, 20));
        assert_eq!(c.entry_span(6, 24), (5, 1, 0));
    }

    #[test]
    fn corrupt_quant_pages_decode_to_errors_not_panics() {
        let c = QuantizedPageCodec::new(3, 256);
        // Too short for a header.
        assert!(c.try_decode(&[0u8; 2]).is_err());
        // g outside 1..=32.
        let mut block = vec![0u8; 256];
        block[0] = 1; // count = 1
        block[2] = 77; // g
        assert!(c.try_decode(&block).is_err());
        // Count overflowing the block at a legal g.
        let mut block = vec![0u8; 256];
        block[0] = 0xFF;
        block[1] = 0xFF;
        block[2] = 32;
        let err = c.try_decode(&block).unwrap_err();
        assert!(err.is_corruption(), "{err}");
    }

    #[test]
    fn every_single_bit_flip_decodes_or_errors_cleanly() {
        // No flipped bit may panic the decoder (errors and silent
        // misdecodes are acceptable at this layer — checksums above catch
        // the silent ones).
        let c = QuantizedPageCodec::new(2, 64);
        let m = mbr(2);
        let block = c.encode(
            &m,
            6,
            [(3u32, &[0.25f32, 0.75][..]), (8, &[0.5, 0.5])].into_iter(),
        );
        for bit in 0..block.len() * 8 {
            let mut tampered = block.clone();
            tampered[bit / 8] ^= 1 << (bit % 8);
            let _ = c.try_decode(&tampered);
        }
    }

    proptest! {
        /// Every decoded cell box contains its original point, for random
        /// pages at random resolutions.
        #[test]
        fn prop_quant_roundtrip(
            pts in proptest::collection::vec(
                proptest::collection::vec(0.0f32..1.0, 5), 1..20),
            g in 1u32..12,
        ) {
            let c = QuantizedPageCodec::new(5, 2048);
            let m = mbr(5);
            let block = c.encode(
                &m,
                g,
                pts.iter().enumerate().map(|(i, p)| (i as u32, p.as_slice())),
            );
            let dec = c.decode(&block);
            prop_assert_eq!(dec.len(), pts.len());
            let grid = GridQuantizer::new(&m, g);
            for (i, p) in pts.iter().enumerate() {
                prop_assert_eq!(dec.id(i) as usize, i);
                prop_assert!(grid.cell_box(dec.cells(i)).contains_point(p));
            }
        }
    }
}
