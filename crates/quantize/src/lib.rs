//! Bit packing and grid quantization codecs.
//!
//! The IQ-tree approximates the points of a data page by overlaying a
//! `2^g × … × 2^g` grid on the page's MBR (Section 3.1): each point is
//! represented by the `g`-bit cell number per dimension. This crate provides
//! the reusable pieces:
//!
//! * [`bits`] — a bit-level writer/reader for packed cell numbers,
//! * [`grid`] — the grid quantizer mapping points to cells and cells back
//!   to their box approximations,
//! * [`page`] — the on-disk codecs for quantized data pages (fixed one
//!   block, per-page resolution `g`, the 32-bit exact special case) and for
//!   exact (third-level) pages,
//! * [`table`] — quantized-domain distance kernels: per-(query, grid)
//!   lookup tables that reduce MINDIST/MAXDIST filtering and window
//!   classification to `d` table lookups, bit-identical to the naive
//!   decode-then-`Metric` path (including the multi-query
//!   [`DistTableBlock`] evaluating a micro-batch per page pass),
//! * [`simd`] — runtime-dispatched (AVX2 / SSE4.1 / scalar) kernels behind
//!   the batch unpack, fold and window-classification entry points.

pub mod bits;
pub mod grid;
pub mod page;
pub mod simd;
pub mod table;

pub use bits::{unpack_cells, BitReader, BitWriter};
pub use grid::GridQuantizer;
pub use page::{ExactPageCodec, QuantPageView, QuantizedEntry, QuantizedPageCodec, EXACT_BITS};
pub use simd::{kernel_name, set_kernel_override, Kernel};
pub use table::{CellMatch, DistTable, DistTableBlock, WindowTable, MAX_BLOCK_QUERIES};
