//! Property tests for the quantized-domain distance kernels: the lookup
//! tables and the streaming page decoder must agree **bit-for-bit** with the
//! naive decode-then-`Metric` path for random pages, all resolutions the
//! paper uses (1..=16 bits) and all three metrics. The engine-conformance
//! suite relies on this equivalence — the kernels change speed, not answers.

use iq_geometry::{Mbr, Metric};
use iq_quantize::{
    CellMatch, DistTable, GridQuantizer, QuantizedPageCodec, WindowTable, EXACT_BITS,
};
use proptest::prelude::*;

const DIM: usize = 6;
const BLOCK: usize = 4096;

fn arb_mbr() -> impl Strategy<Value = Mbr> {
    (
        proptest::collection::vec(-50.0f32..50.0, DIM),
        proptest::collection::vec(0.0f32..40.0, DIM),
    )
        .prop_map(|(lo, ext)| {
            let ub: Vec<f32> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            Mbr::from_bounds(lo, ub)
        })
}

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(proptest::collection::vec(-60.0f32..60.0, DIM), 1..max)
}

fn encode_page(mbr: &Mbr, g: u32, pts: &[Vec<f32>]) -> (QuantizedPageCodec, Vec<u8>) {
    let codec = QuantizedPageCodec::new(DIM, BLOCK);
    let block = codec.encode(
        mbr,
        g,
        pts.iter()
            .enumerate()
            .map(|(i, p)| (i as u32 * 3 + 1, p.as_slice())),
    );
    (codec, block)
}

proptest! {
    /// (a) Table-lookup MINDIST/MAXDIST == naive decode-then-`Metric` for
    /// random pages, bits 1..=16, all three metrics — bit-for-bit.
    #[test]
    fn prop_table_mindist_is_bit_identical_to_naive(
        mbr in arb_mbr(),
        pts in arb_points(30),
        q in proptest::collection::vec(-70.0f32..70.0, DIM),
        g in 1u32..=16,
        metric_ix in 0usize..3,
        materialize in proptest::bool::ANY,
    ) {
        let metric = [Metric::Euclidean, Metric::Maximum, Metric::Manhattan][metric_ix];
        // Toggles the materialized vs lazy table path; both must agree with
        // the naive path exactly.
        let hint = if materialize { 1usize << 20 } else { 0 };
        let (codec, block) = encode_page(&mbr, g, &pts);
        let decoded = codec.try_decode(&block).unwrap();
        let grid = GridQuantizer::new(&mbr, g);
        let mut table = DistTable::new();
        table.build(&mbr, g, metric, &q, hint);
        for i in 0..decoded.len() {
            let cells = decoded.cells(i);
            let cell_box = grid.cell_box(cells);
            let naive_min = metric.mindist_key(&q, &cell_box);
            let naive_max = metric.maxdist(&q, &cell_box);
            prop_assert_eq!(
                table.mindist_key(cells).to_bits(), naive_min.to_bits(),
                "mindist g={} metric={:?} materialized={}", g, metric, table.is_materialized()
            );
            prop_assert_eq!(
                table.maxdist(cells).to_bits(), naive_max.to_bits(),
                "maxdist g={} metric={:?} materialized={}", g, metric, table.is_materialized()
            );
        }
    }

    /// (c) The streaming decoder agrees with `DecodedQuantPage` on every
    /// entry, for quantized and exact (g = 32) pages.
    #[test]
    fn prop_streaming_decoder_agrees_with_decoded_page(
        mbr in arb_mbr(),
        pts in arb_points(30),
        g_raw in 1u32..=17,
    ) {
        // 17 stands in for the exact (32-bit) special case.
        let g = if g_raw == 17 { EXACT_BITS } else { g_raw };
        let (codec, block) = encode_page(&mbr, g, &pts);
        let decoded = codec.try_decode(&block).unwrap();
        let view = codec.try_view(&block).unwrap();
        prop_assert_eq!(view.len(), decoded.len());
        prop_assert_eq!(view.bits(), decoded.bits());
        let mut scratch = Vec::new();
        let mut i = 0usize;
        view.for_each_entry(&mut scratch, |id, cells| {
            assert_eq!(id, decoded.id(i), "entry {i}");
            assert_eq!(cells, decoded.cells(i), "entry {i}");
            i += 1;
        });
        prop_assert_eq!(i, decoded.len());
    }

    /// Window classification over the tables reproduces the `Mbr`
    /// intersect/contain decisions exactly.
    #[test]
    fn prop_window_table_matches_mbr_ops(
        mbr in arb_mbr(),
        pts in arb_points(20),
        win_lo in proptest::collection::vec(-60.0f32..30.0, DIM),
        win_ext in proptest::collection::vec(0.0f32..50.0, DIM),
        g in 1u32..=12,
        materialize in proptest::bool::ANY,
    ) {
        let hint = if materialize { 1usize << 20 } else { 0 };
        let win_hi: Vec<f32> = win_lo.iter().zip(&win_ext).map(|(l, e)| l + e).collect();
        let window = Mbr::from_bounds(win_lo, win_hi);
        let (codec, block) = encode_page(&mbr, g, &pts);
        let decoded = codec.try_decode(&block).unwrap();
        let grid = GridQuantizer::new(&mbr, g);
        let mut table = WindowTable::new();
        table.build(&mbr, g, &window, hint);
        for i in 0..decoded.len() {
            let cells = decoded.cells(i);
            let cell_box = grid.cell_box(cells);
            let expect = if window.contains_mbr(&cell_box) {
                CellMatch::Inside
            } else if window.intersects(&cell_box) {
                CellMatch::Partial
            } else {
                CellMatch::Disjoint
            };
            prop_assert_eq!(table.classify(cells), expect, "g={} entry={}", g, i);
        }
    }
}
