//! The level-2 scan kernel is allocation-free in steady state: once the
//! scratch buffers and table storage have grown to their working size, a
//! full page scan (view + table build + streaming decode + MINDIST and
//! MAXDIST lookups) performs **zero** heap allocations. Enforced with a
//! counting global allocator; the counter is thread-local so the harness
//! thread cannot pollute the measurement.
//!
//! Single-test file on purpose: one process, one test thread.

use iq_geometry::{Mbr, Metric};
use iq_quantize::{DistTable, QuantizedPageCodec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

std::thread_local! {
    static LOCAL_ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates to `System` verbatim; the counter bump has no effect
// on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = LOCAL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    LOCAL_ALLOCS.try_with(Cell::get).unwrap_or(0)
}

const DIM: usize = 8;

/// One full filter pass over a page: exactly what the level-2 scan does
/// per page in `search.rs` (minus the candidate heap, which is caller
/// state).
fn scan_page(
    codec: &QuantizedPageCodec,
    mbr: &Mbr,
    block: &[u8],
    q: &[f32],
    table: &mut DistTable,
    scratch: &mut Vec<u32>,
) -> f64 {
    let view = codec.try_view(block).expect("valid page");
    table.build(mbr, view.bits(), Metric::Euclidean, q, view.len());
    let mut acc = 0.0f64;
    view.for_each_entry(scratch, |id, cells| {
        acc += table.mindist_key(cells) + table.maxdist_key(cells) + f64::from(id);
    });
    acc
}

#[test]
fn steady_state_page_scan_is_allocation_free() {
    let lo = vec![0.0f32; DIM];
    let hi = vec![10.0f32; DIM];
    let mbr = Mbr::from_bounds(lo, hi);
    let q: Vec<f32> = (0..DIM).map(|i| 0.37 * i as f32).collect();
    let codec = QuantizedPageCodec::new(DIM, 4096);
    let pts: Vec<Vec<f32>> = (0..40)
        .map(|i| {
            (0..DIM)
                .map(|j| ((i * 7 + j * 3) % 100) as f32 / 10.0)
                .collect()
        })
        .collect();
    // g = 4 materializes the table; g = 14 exceeds MAX_TABLE_CELLS × dim
    // budget and takes the lazy fold path. Both must be alloc-free.
    let blocks: Vec<Vec<u8>> = [4u32, 14]
        .iter()
        .map(|&g| {
            codec.encode(
                &mbr,
                g,
                pts.iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, p.as_slice())),
            )
        })
        .collect();

    let mut table = DistTable::new();
    let mut scratch: Vec<u32> = Vec::new();
    // Warm-up: grows the scratch buffer and the table storage to their
    // steady-state capacity.
    let mut warm = 0.0;
    for block in &blocks {
        warm += scan_page(&codec, &mbr, block, &q, &mut table, &mut scratch);
    }

    let before = allocations();
    let mut steady = 0.0;
    for _ in 0..3 {
        for block in &blocks {
            steady += scan_page(&codec, &mbr, block, &q, &mut table, &mut scratch);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "steady-state page scans must not touch the allocator"
    );
    assert!((steady - 3.0 * warm).abs() < 1e-9, "same pages, same keys");
}
