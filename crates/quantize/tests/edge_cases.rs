//! Edge cases and failure injection for the codecs: odd bit widths,
//! capacity boundaries, corrupt pages, extreme coordinates.

use iq_geometry::Mbr;
use iq_quantize::{BitReader, BitWriter, GridQuantizer, QuantizedPageCodec, EXACT_BITS};
use proptest::prelude::*;

#[test]
fn all_bit_widths_roundtrip() {
    for width in 1..=32u32 {
        let max = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        let values = [0u32, 1.min(max), max / 2, max];
        let mut w = BitWriter::new();
        for &v in &values {
            w.write(v, width);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.read(width).unwrap(), v, "width {width}");
        }
    }
}

#[test]
fn page_at_exact_capacity_roundtrips() {
    for g in [1u32, 3, 7, 13, 21, 31, 32] {
        let codec = QuantizedPageCodec::new(7, 1024);
        let cap = codec.capacity(g);
        assert!(cap >= 1, "g={g}");
        let mbr = Mbr::from_bounds(vec![0.0; 7], vec![1.0; 7]);
        let pts: Vec<Vec<f32>> = (0..cap).map(|i| vec![(i % 97) as f32 / 97.0; 7]).collect();
        let block = codec.encode(
            &mbr,
            g,
            pts.iter()
                .enumerate()
                .map(|(i, p)| (i as u32, p.as_slice())),
        );
        let dec = codec.decode(&block);
        assert_eq!(dec.len(), cap, "g={g}");
        assert_eq!(dec.bits(), g);
    }
}

#[test]
#[should_panic(expected = "exceed capacity")]
fn page_over_capacity_is_rejected() {
    let codec = QuantizedPageCodec::new(4, 256);
    let cap = codec.capacity(8);
    let mbr = Mbr::from_bounds(vec![0.0; 4], vec![1.0; 4]);
    let pts: Vec<Vec<f32>> = (0..=cap).map(|_| vec![0.5; 4]).collect();
    codec.encode(
        &mbr,
        8,
        pts.iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.as_slice())),
    );
}

#[test]
fn corrupt_resolution_byte_is_detected() {
    let codec = QuantizedPageCodec::new(3, 256);
    let mbr = Mbr::from_bounds(vec![0.0; 3], vec![1.0; 3]);
    let mut block = codec.encode(&mbr, 4, [(0u32, &[0.5f32, 0.5, 0.5][..])].into_iter());
    block[2] = 0; // g = 0 is invalid
    let err = codec.try_decode(&block).unwrap_err();
    assert!(err.is_corruption(), "{err}");
}

#[test]
fn corrupt_count_is_detected() {
    let codec = QuantizedPageCodec::new(3, 256);
    let mbr = Mbr::from_bounds(vec![0.0; 3], vec![1.0; 3]);
    let mut block = codec.encode(&mbr, 4, [(0u32, &[0.5f32, 0.5, 0.5][..])].into_iter());
    block[0] = 0xFF; // count larger than a block can hold
    block[1] = 0xFF;
    let err = codec.try_decode(&block).unwrap_err();
    assert!(err.is_corruption(), "{err}");
}

#[test]
fn degenerate_mbr_quantizes_to_zero_cells() {
    // All points identical: MBR has zero extent everywhere.
    let codec = QuantizedPageCodec::new(4, 256);
    let p = [0.25f32, 0.5, 0.75, 1.0];
    let mbr = Mbr::of_points(4, std::iter::once(&p[..]));
    let block = codec.encode(&mbr, 6, [(9u32, &p[..])].into_iter());
    let dec = codec.decode(&block);
    assert_eq!(dec.cells(0), &[0, 0, 0, 0]);
    let grid = GridQuantizer::new(&mbr, 6);
    let cell = grid.cell_box(dec.cells(0));
    assert!(cell.contains_point(&p));
    assert_eq!(cell.volume(), 0.0);
}

#[test]
fn extreme_coordinates_survive_exact_pages() {
    let codec = QuantizedPageCodec::new(2, 128);
    let weird = [f32::MIN_POSITIVE, -1.0e30f32];
    let mbr = Mbr::of_points(2, std::iter::once(&weird[..]));
    let block = codec.encode(&mbr, EXACT_BITS, [(1u32, &weird[..])].into_iter());
    let dec = codec.decode(&block);
    assert_eq!(dec.exact_point(0).expect("exact"), weird.to_vec());
}

proptest! {
    /// Byte-aligned entries: any prefix of entries decodes independently
    /// of what follows (each entry is self-contained).
    #[test]
    fn prop_entries_are_byte_aligned(
        n in 1usize..30,
        g in 1u32..16,
    ) {
        let codec = QuantizedPageCodec::new(5, 2048);
        prop_assume!(n <= codec.capacity(g));
        let mbr = Mbr::from_bounds(vec![0.0; 5], vec![1.0; 5]);
        let pts: Vec<Vec<f32>> =
            (0..n).map(|i| vec![i as f32 / n as f32; 5]).collect();
        let block = codec.encode(
            &mbr,
            g,
            pts.iter().enumerate().map(|(i, p)| (i as u32, p.as_slice())),
        );
        let dec = codec.decode(&block);
        // Scribbling over the bytes AFTER the live entries must not change
        // anything.
        let live = 4 + n * codec.entry_bytes(g);
        let mut scribbled = block.clone();
        for b in scribbled.iter_mut().skip(live) {
            *b = 0xA5;
        }
        let dec2 = codec.decode(&scribbled);
        prop_assert_eq!(dec.len(), dec2.len());
        for i in 0..dec.len() {
            prop_assert_eq!(dec.id(i), dec2.id(i));
            prop_assert_eq!(dec.cells(i), dec2.cells(i));
        }
    }
}
