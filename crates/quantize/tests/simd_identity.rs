//! Property tests pinning the SIMD kernels to the scalar oracle, bit for
//! bit: batch unpack vs per-entry decode, batch MINDIST/MAXDIST folds vs the
//! per-entry table methods, the multi-query `DistTableBlock` vs per-query
//! `DistTable`s, and batch window classification vs per-entry `classify` —
//! across bits 1..=16, all three metrics, and unaligned dims/page lengths.
//!
//! The batch entry points dispatch to whatever tier the host CPU supports
//! (AVX2 / SSE4.1 / scalar), so on a SIMD host these properties prove the
//! vector paths; under `IQ_FORCE_SCALAR=1` (CI's forced leg) they prove the
//! portable fallback against itself and the per-entry oracle.

use iq_geometry::{Mbr, Metric};
use iq_quantize::{
    set_kernel_override, DistTable, DistTableBlock, GridQuantizer, Kernel, QuantizedPageCodec,
    WindowTable,
};
use proptest::prelude::*;

const METRICS: [Metric; 3] = [Metric::Euclidean, Metric::Manhattan, Metric::Maximum];

/// Truncates the fixed-width raw draws to `dim` and scales the relative
/// point coordinates into the MBR (dimensions may be degenerate).
fn mk_case(dim: usize, lb_raw: &[f32], ext_raw: &[f32], rel: &[Vec<f32>]) -> (Mbr, Vec<Vec<f32>>) {
    let lb: Vec<f32> = lb_raw[..dim].to_vec();
    let ub: Vec<f32> = lb.iter().zip(&ext_raw[..dim]).map(|(l, e)| l + e).collect();
    let pts = rel
        .iter()
        .map(|p| {
            (0..dim)
                .map(|i| lb[i] + p[i] * (ub[i] - lb[i]))
                .collect::<Vec<f32>>()
        })
        .collect();
    (Mbr::from_bounds(lb, ub), pts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `QuantPageView::unpack_all` produces exactly the per-entry
    /// `cells_into` bits for every width 1..=16 and odd dims/lengths.
    #[test]
    fn prop_unpack_all_matches_per_entry(
        dim in 1usize..=13,
        g in 1u32..=16,
        lb_raw in proptest::collection::vec(-8.0f32..8.0, 13),
        ext_raw in proptest::collection::vec(0.0f32..5.0, 13),
        rel in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 13), 1..=40),
    ) {
        let (mbr, pts) = mk_case(dim, &lb_raw, &ext_raw, &rel);
        let codec = QuantizedPageCodec::new(dim, 4096);
        let n = pts.len().min(codec.capacity(g));
        let block = codec.encode(
            &mbr,
            g,
            pts[..n].iter().enumerate().map(|(i, p)| (i as u32, p.as_slice())),
        );
        let view = codec.try_view(&block).expect("fresh page");
        let mut all = Vec::new();
        view.unpack_all(&mut all);
        prop_assert_eq!(all.len(), n * dim);
        let mut one = vec![0u32; dim];
        for e in 0..n {
            view.cells_into(e, &mut one);
            prop_assert_eq!(&all[e * dim..(e + 1) * dim], &one[..], "entry {}", e);
        }
    }

    /// Batch MINDIST/MAXDIST folds equal the per-entry table methods bit
    /// for bit, materialized and lazy, for all metrics.
    #[test]
    fn prop_batch_fold_matches_per_entry(
        dim in 1usize..=11,
        g in 1u32..=16,
        metric_ix in 0usize..3,
        lb_raw in proptest::collection::vec(-8.0f32..8.0, 11),
        ext_raw in proptest::collection::vec(0.0f32..5.0, 11),
        rel in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 11), 1..=30),
        qrel in proptest::collection::vec(-0.5f32..1.5, 11),
    ) {
        let metric = METRICS[metric_ix];
        let (mbr, pts) = mk_case(dim, &lb_raw, &ext_raw, &rel);
        let q: Vec<f32> = (0..dim)
            .map(|i| mbr.lb(i) + qrel[i] * (mbr.ub(i) - mbr.lb(i)))
            .collect();
        let grid = GridQuantizer::new(&mbr, g);
        let block: Vec<u32> = pts.iter().flat_map(|p| grid.encode(p)).collect();
        let n = pts.len();
        for hint in [1usize << 20, 0] {
            let mut t = DistTable::new();
            t.build(&mbr, g, metric, &q, hint);
            let (mut keys, mut los, mut his) = (Vec::new(), Vec::new(), Vec::new());
            t.mindist_keys(&block, &mut keys);
            t.bounds_keys(&block, &mut los, &mut his);
            prop_assert_eq!(keys.len(), n);
            for e in 0..n {
                let cs = &block[e * dim..(e + 1) * dim];
                prop_assert_eq!(keys[e].to_bits(), t.mindist_key(cs).to_bits());
                prop_assert_eq!(los[e].to_bits(), t.mindist_key(cs).to_bits());
                prop_assert_eq!(his[e].to_bits(), t.maxdist_key(cs).to_bits());
            }
        }
    }

    /// The multi-query block table equals per-query single tables bit for
    /// bit, for every query of the block.
    #[test]
    fn prop_block_table_matches_single_query(
        dim in 1usize..=9,
        // The block stores dim × 2^g × qpad rows; capping g keeps each case
        // to a few MB while still crossing every unpack width class.
        g in 1u32..=10,
        metric_ix in 0usize..3,
        nq in 1usize..=16,
        lb_raw in proptest::collection::vec(-8.0f32..8.0, 9),
        ext_raw in proptest::collection::vec(0.0f32..5.0, 9),
        rel in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 9), 1..=20),
        qrel in proptest::collection::vec(proptest::collection::vec(-0.5f32..1.5, 9), 16),
    ) {
        let metric = METRICS[metric_ix];
        let (mbr, pts) = mk_case(dim, &lb_raw, &ext_raw, &rel);
        let queries: Vec<Vec<f32>> = qrel[..nq]
            .iter()
            .map(|p| {
                (0..dim)
                    .map(|i| mbr.lb(i) + p[i] * (mbr.ub(i) - mbr.lb(i)))
                    .collect()
            })
            .collect();
        let qrefs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let mut blockt = DistTableBlock::new();
        prop_assert!(blockt.build(&mbr, g, metric, &qrefs, 1 << 20));
        let grid = GridQuantizer::new(&mbr, g);
        let singles: Vec<DistTable> = qrefs
            .iter()
            .map(|q| {
                let mut t = DistTable::new();
                t.build(&mbr, g, metric, q, 1 << 20);
                t
            })
            .collect();
        let mut lo = vec![0.0; blockt.qpad()];
        let mut hi = vec![0.0; blockt.qpad()];
        for p in &pts {
            let cells = grid.encode(p);
            blockt.bounds_into(&cells, &mut lo, &mut hi);
            for (q, t) in singles.iter().enumerate() {
                prop_assert_eq!(lo[q].to_bits(), t.mindist_key(&cells).to_bits());
                prop_assert_eq!(hi[q].to_bits(), t.maxdist_key(&cells).to_bits());
            }
        }
    }

    /// Batch window classification decides exactly like per-entry
    /// `classify`.
    #[test]
    fn prop_classify_batch_matches_per_entry(
        dim in 1usize..=9,
        g in 1u32..=16,
        lb_raw in proptest::collection::vec(-8.0f32..8.0, 9),
        ext_raw in proptest::collection::vec(0.0f32..5.0, 9),
        rel in proptest::collection::vec(proptest::collection::vec(0.0f32..1.0, 9), 1..=30),
        wlb_rel in proptest::collection::vec(-0.3f32..1.3, 9),
        wext_rel in proptest::collection::vec(0.0f32..0.8, 9),
    ) {
        let (mbr, pts) = mk_case(dim, &lb_raw, &ext_raw, &rel);
        let wlb: Vec<f32> = (0..dim)
            .map(|i| mbr.lb(i) + wlb_rel[i] * (mbr.ub(i) - mbr.lb(i)))
            .collect();
        let wub: Vec<f32> = (0..dim)
            .map(|i| wlb[i] + wext_rel[i] * (mbr.ub(i) - mbr.lb(i)))
            .collect();
        let window = Mbr::from_bounds(wlb, wub);
        let grid = GridQuantizer::new(&mbr, g);
        let block: Vec<u32> = pts.iter().flat_map(|p| grid.encode(p)).collect();
        for hint in [1usize << 20, 0] {
            let mut t = WindowTable::new();
            t.build(&mbr, g, &window, hint);
            let (mut raw, mut out) = (Vec::new(), Vec::new());
            t.classify_batch(&block, &mut raw, &mut out);
            prop_assert_eq!(out.len(), pts.len());
            for (e, got) in out.iter().enumerate() {
                let want = t.classify(&block[e * dim..(e + 1) * dim]);
                prop_assert_eq!(*got, want, "entry {}", e);
            }
        }
    }
}

/// Forcing the scalar kernel produces the same bits as the detected tier on
/// a fixed workload (exercises `set_kernel_override`, the hook behind the
/// `IQ_FORCE_SCALAR` CI leg).
#[test]
fn forced_scalar_matches_detected_tier() {
    let dim = 7;
    let mbr = Mbr::from_bounds(vec![-2.0; dim], vec![3.0; dim]);
    let q: Vec<f32> = (0..dim).map(|i| -1.0 + i as f32 * 0.63).collect();
    let grid = GridQuantizer::new(&mbr, 6);
    let pts: Vec<Vec<f32>> = (0..57)
        .map(|j| {
            (0..dim)
                .map(|i| ((j * 31 + i * 17) % 97) as f32 / 97.0 * 5.0 - 2.0)
                .collect()
        })
        .collect();
    let block: Vec<u32> = pts.iter().flat_map(|p| grid.encode(p)).collect();
    let run = |metric: Metric| {
        let mut t = DistTable::new();
        t.build(&mbr, 6, metric, &q, 1 << 20);
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        t.bounds_keys(&block, &mut lo, &mut hi);
        (lo, hi)
    };
    for metric in METRICS {
        let native = run(metric);
        set_kernel_override(Some(Kernel::Scalar));
        let scalar = run(metric);
        set_kernel_override(None);
        for (a, b) in native.0.iter().zip(&scalar.0) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in native.1.iter().zip(&scalar.1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// `for_each_entry_multi` streams the same ids in slot order and the same
/// per-query bounds as per-query single tables over `for_each_entry`.
#[test]
fn multi_entry_stream_matches_single_query_stream() {
    let dim = 5;
    let mbr = Mbr::from_bounds(vec![0.0; dim], vec![1.0; dim]);
    let codec = QuantizedPageCodec::new(dim, 2048);
    let pts: Vec<Vec<f32>> = (0..80)
        .map(|j| {
            (0..dim)
                .map(|i| ((j * 13 + i * 29) % 83) as f32 / 83.0)
                .collect()
        })
        .collect();
    let g = 6;
    let n = pts.len().min(codec.capacity(g));
    let page = codec.encode(
        &mbr,
        g,
        pts[..n]
            .iter()
            .enumerate()
            .map(|(i, p)| (i as u32, p.as_slice())),
    );
    let view = codec.try_view(&page).expect("fresh page");
    let queries: Vec<Vec<f32>> = (0..5)
        .map(|j| {
            (0..dim)
                .map(|i| (j as f32 * 0.21 + i as f32 * 0.13) % 1.0)
                .collect()
        })
        .collect();
    let qrefs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
    let mut blockt = DistTableBlock::new();
    assert!(blockt.build(&mbr, g, Metric::Euclidean, &qrefs, n));
    let singles: Vec<DistTable> = qrefs
        .iter()
        .map(|q| {
            let mut t = DistTable::new();
            t.build(&mbr, g, Metric::Euclidean, q, n);
            t
        })
        .collect();
    let (mut cells, mut lo, mut hi) = (Vec::new(), Vec::new(), Vec::new());
    let mut seen = 0usize;
    let mut scratch = Vec::new();
    let mut per_entry: Vec<(u32, Vec<u32>)> = Vec::new();
    view.for_each_entry(&mut scratch, |id, cs| per_entry.push((id, cs.to_vec())));
    view.for_each_entry_multi(&blockt, &mut cells, &mut lo, &mut hi, |slot, id, lo, hi| {
        assert_eq!(slot, seen);
        assert_eq!(id, per_entry[slot].0);
        let cs = &per_entry[slot].1;
        for (q, t) in singles.iter().enumerate() {
            assert_eq!(lo[q].to_bits(), t.mindist_key(cs).to_bits());
            assert_eq!(hi[q].to_bits(), t.maxdist_key(cs).to_bits());
        }
        seen += 1;
    });
    assert_eq!(seen, n);
}
