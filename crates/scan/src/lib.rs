//! Sequential-scan baseline.
//!
//! The reference technique of the paper's evaluation: the exact coordinates
//! of all points live in one flat file that every query reads front to back
//! with a single seek. In very high dimensions this is the bar an index has
//! to clear (cf. \[7\] in the paper); the IQ-tree is designed to beat it by
//! scanning *compressed* approximations instead.

use iq_engine::{
    query_span_begin, query_span_end, AccessMethod, Executor, Filter, QueryOptions, QueryTrace,
};
use iq_geometry::{Dataset, Metric};
use iq_obs::CostPrediction;
use iq_storage::{BlockDevice, SimClock};

/// Number of blocks fetched per read while scanning (bounds buffer memory;
/// has no effect on simulated cost because the reads stay sequential).
const SCAN_CHUNK_BLOCKS: u64 = 256;

/// A flat file of exact points, searched by full scans.
///
/// # Example
///
/// ```
/// use iq_geometry::{Dataset, Metric};
/// use iq_storage::{MemDevice, SimClock};
/// use iq_scan::SeqScan;
///
/// let ds = Dataset::from_flat(2, vec![0.1, 0.1, 0.9, 0.9]);
/// let mut clock = SimClock::default();
/// let scan = SeqScan::build(&ds, Metric::Euclidean, Box::new(MemDevice::new(512)), &mut clock);
/// assert_eq!(scan.nearest(&mut clock, &[0.0, 0.0]).unwrap().0, 0);
/// ```
pub struct SeqScan {
    dim: usize,
    metric: Metric,
    n: usize,
    dev: Box<dyn BlockDevice>,
}

impl SeqScan {
    /// Builds the scan file by writing all points sequentially to `dev`.
    pub fn build(
        ds: &Dataset,
        metric: Metric,
        mut dev: Box<dyn BlockDevice>,
        clock: &mut SimClock,
    ) -> Self {
        // Plain flat file: `dim` little-endian f32s per point, ids implicit
        // in position. No checksums — this baseline models the raw scan the
        // paper compares against.
        let mut bytes = Vec::with_capacity(ds.len() * ds.dim() * 4);
        for p in ds.iter() {
            for c in p {
                bytes.extend_from_slice(&c.to_le_bytes());
            }
        }
        dev.append(clock, &bytes).expect("append scan file");
        Self {
            dim: ds.dim(),
            metric,
            n: ds.len(),
            dev,
        }
    }

    /// Dimensionality of the indexed points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance metric queries are answered under.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Scans the file once, invoking `visit(id, coords)` for every point.
    ///
    /// Takes `&self`: the scan file is immutable after [`SeqScan::build`],
    /// so any number of threads may query it concurrently, each with its
    /// own clock.
    fn scan(&self, clock: &mut SimClock, visit: impl FnMut(u32, &[f32])) {
        self.scan_bounded(clock, f64::INFINITY, visit);
    }

    /// Like [`SeqScan::scan`], stopping between chunk reads once the
    /// clock reaches `deadline` (simulated seconds). Returns the number
    /// of points visited and the number of blocks read; with an infinite
    /// deadline those are always the whole file.
    fn scan_bounded(
        &self,
        clock: &mut SimClock,
        deadline: f64,
        mut visit: impl FnMut(u32, &[f32]),
    ) -> (u64, u64) {
        // The whole sweep is one filter pass over exact data; there is no
        // separate planning or refinement to attribute time to.
        clock.phase_begin(iq_obs::Phase::Filter);
        let bs = self.dev.block_size();
        let total_blocks = self.dev.num_blocks();
        let pb = self.dim * 4;
        let mut carry: Vec<u8> = Vec::with_capacity(pb);
        let mut id: u32 = 0;
        let mut coords = vec![0.0f32; self.dim];
        let mut consume = |bytes: &[u8], id: &mut u32, carry: &mut Vec<u8>| {
            let mut off = 0;
            // Finish a point straddling the previous chunk.
            if !carry.is_empty() {
                let need = pb - carry.len();
                carry.extend_from_slice(&bytes[..need]);
                off = need;
                if (*id as usize) < self.n {
                    decode_into(carry, &mut coords);
                    visit(*id, &coords);
                    *id += 1;
                }
                carry.clear();
            }
            while off + pb <= bytes.len() && (*id as usize) < self.n {
                decode_into(&bytes[off..off + pb], &mut coords);
                visit(*id, &coords);
                *id += 1;
                off += pb;
            }
            if (*id as usize) < self.n {
                carry.extend_from_slice(&bytes[off..]);
            }
        };
        // Under a finite deadline the sweep checks the clock after every
        // block, not every chunk: simulated cost is identical (the reads
        // stay sequential) but the budget resolves at block granularity.
        let chunk = if deadline.is_finite() {
            1
        } else {
            SCAN_CHUNK_BLOCKS
        };
        let mut block = 0u64;
        while block < total_blocks {
            if clock.total_time() >= deadline {
                break;
            }
            let n = chunk.min(total_blocks - block);
            let buf = self
                .dev
                .read_to_vec(clock, block, n)
                .expect("read scan chunk");
            consume(&buf, &mut id, &mut carry);
            block += n;
        }
        // CPU cost: one distance-like evaluation per visited point.
        clock.charge_dist_evals(self.dim, u64::from(id));
        clock.phase_end();
        debug_assert!(
            block < total_blocks || id as usize == self.n,
            "block size {bs} scan desynchronized"
        );
        (u64::from(id), block)
    }

    /// Exact nearest neighbor of `q`, as `(id, distance)`.
    pub fn nearest(&self, clock: &mut SimClock, q: &[f32]) -> Option<(u32, f64)> {
        self.knn(clock, q, 1).pop()
    }

    /// The `k` nearest neighbors of `q`, ordered by increasing distance.
    pub fn knn(&self, clock: &mut SimClock, q: &[f32], k: usize) -> Vec<(u32, f64)> {
        AccessMethod::knn_opts_traced(self, clock, q, k, None, &QueryOptions::EXACT).0
    }

    /// The `k` nearest neighbors of `q` among the points matching
    /// `filter`: the same single sweep, with non-matching points dropped
    /// before their distance is evaluated. The result is the filter-then-
    /// scan oracle the other engines' filtered searches are tested
    /// against.
    pub fn knn_filtered(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: &Filter,
    ) -> Vec<(u32, f64)> {
        AccessMethod::knn_opts_traced(self, clock, q, k, Some(filter), &QueryOptions::EXACT).0
    }

    /// All points inside the query window (unordered ids).
    pub fn window(&self, clock: &mut SimClock, window: &iq_geometry::Mbr) -> Vec<u32> {
        assert_eq!(window.dim(), self.dim, "window dimensionality mismatch");
        let mut out = Vec::new();
        self.scan(clock, |id, p| {
            if window.contains_point(p) {
                out.push(id);
            }
        });
        out
    }

    /// All points within `radius` of `q`, as ids (unordered).
    pub fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        assert_eq!(q.len(), self.dim);
        let metric = self.metric;
        let key = metric.distance_to_key(radius);
        let mut out = Vec::new();
        self.scan(clock, |id, p| {
            if metric.distance_key(p, q) <= key {
                out.push(id);
            }
        });
        out
    }
}

impl AccessMethod for SeqScan {
    fn name(&self) -> &'static str {
        "scan"
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn len(&self) -> usize {
        self.n
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    /// The single scan search loop: one sequential sweep offering every
    /// (matching) exact point to the shared [`Executor`]. The scan has no
    /// approximation level, so `epsilon`, `nprobes` and `refine_factor`
    /// cannot shorten it — only `time_budget` does (the sweep stops
    /// between chunk reads, returning the best answer so far).
    fn knn_opts_traced(
        &self,
        clock: &mut SimClock,
        q: &[f32],
        k: usize,
        filter: Option<&Filter>,
        opts: &QueryOptions,
    ) -> (Vec<(u32, f64)>, QueryTrace) {
        assert_eq!(q.len(), self.dim);
        if k == 0 || self.n == 0 || filter.is_some_and(|f| f.matching() == 0) {
            return (Vec::new(), QueryTrace::default());
        }
        let metric = self.metric;
        query_span_begin(clock, "scan", k, filter, opts);
        let mut exec = Executor::new(metric, k, opts, clock);
        let deadline = opts
            .time_budget
            .map_or(f64::INFINITY, |b| clock.total_time() + b);
        let (visited, blocks) = self.scan_bounded(clock, deadline, |id, p| {
            if filter.is_none_or(|f| f.matches(id)) {
                exec.offer(metric.distance_key(p, q), id);
            }
        });
        exec.trace.pages_processed = blocks;
        exec.trace.runs = 1;
        exec.skip_candidates(self.n as u64 - visited);
        clock.phase_begin(iq_obs::Phase::TopK);
        let out = exec.into_results(metric);
        clock.phase_end();
        query_span_end(clock, &out.1);
        out
    }

    /// A sequential scan's cost is fully analytic: every query reads the
    /// whole file in one sweep (`cost_is_one_sequential_scan` pins this),
    /// so the prediction is exact apart from a `time_budget` clip. There
    /// is no refinement level — all pages are filter pages.
    fn cost_prediction(&self, _k: usize, opts: &QueryOptions) -> Option<CostPrediction> {
        let disk = iq_storage::DiskModel::default();
        let blocks = disk.blocks_for(self.n * self.dim * 4) as f64;
        let mut io_seconds = disk.scan_cost(blocks as u64);
        let mut pages = blocks;
        if let Some(b) = opts.time_budget {
            if io_seconds > b {
                // The sweep stops at block granularity once the budget is
                // spent: scale the page count by the readable fraction.
                pages = (blocks * b / io_seconds).floor().max(0.0);
                io_seconds = b;
            }
        }
        Some(CostPrediction {
            pages,
            io_seconds,
            filter_pages: pages,
            refine_pages: 0.0,
        })
    }

    fn range(&self, clock: &mut SimClock, q: &[f32], radius: f64) -> Vec<u32> {
        SeqScan::range(self, clock, q, radius)
    }

    fn window(&self, clock: &mut SimClock, window: &iq_geometry::Mbr) -> Vec<u32> {
        SeqScan::window(self, clock, window)
    }
}

// Queries take `&self`; a scan shared across threads must stay usable.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SeqScan>();
};

#[inline]
fn decode_into(bytes: &[u8], coords: &mut [f32]) {
    for (c, chunk) in coords.iter_mut().zip(bytes.chunks_exact(4)) {
        *c = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::{CpuModel, DiskModel, MemDevice};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn make(n: usize, dim: usize, seed: u64) -> (Dataset, SeqScan, SimClock) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(dim);
        let mut row = vec![0.0f32; dim];
        for _ in 0..n {
            row.fill_with(|| rng.gen());
            ds.push(&row);
        }
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let scan = SeqScan::build(
            &ds,
            Metric::Euclidean,
            Box::new(MemDevice::new(8192)),
            &mut clock,
        );
        clock.reset();
        (ds, scan, clock)
    }

    fn brute_nn(ds: &Dataset, q: &[f32]) -> (u32, f64) {
        let m = Metric::Euclidean;
        (0..ds.len())
            .map(|i| (i as u32, m.distance(ds.point(i), q)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
            .expect("non-empty")
    }

    #[test]
    fn nearest_matches_brute_force() {
        let (ds, scan, mut clock) = make(500, 7, 1);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let q: Vec<f32> = (0..7).map(|_| rng.gen()).collect();
            let (id, d) = scan.nearest(&mut clock, &q).expect("non-empty");
            let (bid, bd) = brute_nn(&ds, &q);
            assert_eq!(id, bid);
            assert!((d - bd).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_is_sorted_and_correct() {
        let (ds, scan, mut clock) = make(300, 4, 2);
        let q = vec![0.5f32; 4];
        let knn = scan.knn(&mut clock, &q, 10);
        assert_eq!(knn.len(), 10);
        assert!(knn.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(knn[0].0, brute_nn(&ds, &q).0);
        // Every returned distance <= distance of any point not returned.
        let max_ret = knn.last().expect("10 items").1;
        let in_set: std::collections::HashSet<u32> = knn.iter().map(|x| x.0).collect();
        for i in 0..ds.len() {
            if !in_set.contains(&(i as u32)) {
                assert!(Metric::Euclidean.distance(ds.point(i), &q) >= max_ret - 1e-9);
            }
        }
    }

    #[test]
    fn range_query_matches_filter() {
        let (ds, scan, mut clock) = make(400, 5, 3);
        let q = vec![0.4f32; 5];
        let r = 0.5;
        let mut got = scan.range(&mut clock, &q, r);
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..ds.len() as u32)
            .filter(|&i| Metric::Euclidean.distance(ds.point(i as usize), &q) <= r)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn cost_is_one_sequential_scan() {
        let (_, scan, mut clock) = make(2_000, 16, 4);
        scan.nearest(&mut clock, &[0.1f32; 16]);
        let d = DiskModel::default();
        let blocks = d.blocks_for(2_000 * 16 * 4);
        assert_eq!(clock.stats().seeks, 1);
        assert_eq!(clock.stats().blocks_read, blocks);
        assert!((clock.io_time() - d.scan_cost(blocks)).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let (ds, scan, mut clock) = make(5, 3, 5);
        let knn = scan.knn(&mut clock, &[0.0, 0.0, 0.0], 50);
        assert_eq!(knn.len(), ds.len());
    }

    #[test]
    fn straddling_points_decode_correctly() {
        // dim 5 -> 20 bytes/point; block 64 -> points straddle boundaries.
        let mut ds = Dataset::new(5);
        for i in 0..50 {
            ds.push(&[i as f32; 5]);
        }
        let mut clock = SimClock::default();
        let scan = SeqScan::build(
            &ds,
            Metric::Euclidean,
            Box::new(MemDevice::new(64)),
            &mut clock,
        );
        let (id, d) = scan.nearest(&mut clock, &[17.2f32; 5]).expect("non-empty");
        assert_eq!(id, 17);
        assert!(d > 0.0);
    }
}
