//! Property tests: a [`CachedDevice`] must be observationally identical to
//! the bare device it wraps — same bytes under any interleaving of ranged
//! reads and write-through writes — and a fully-resident read must charge
//! nothing to the simulated clock.

use iq_cache::CachedDevice;
use iq_storage::{BlockDevice, CpuModel, DiskModel, MemDevice, SimClock};
use proptest::prelude::*;

const BS: usize = 64;

fn clock() -> SimClock {
    SimClock::new(DiskModel::default(), CpuModel::free())
}

/// (op, block, len, fill): op 0 = ranged read, 1 = overwrite, 2 = append.
type Op = (u8, u64, u64, u8);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..3, 0u64..24, 1u64..5, 0u8..=254), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of reads, overwrites and appends observes exactly
    /// the bytes a bare MemDevice would produce, and never pays more
    /// simulated I/O.
    #[test]
    fn prop_cache_is_transparent(ops in ops_strategy(), cap in 1usize..10) {
        let mut plain = MemDevice::new(BS);
        let mut cached = CachedDevice::new(Box::new(MemDevice::new(BS)), cap);
        let mut pc = clock();
        let mut cc = clock();
        // Both devices start with 8 seeded blocks.
        for i in 0..8u8 {
            plain.append(&mut pc, &[i; BS]).unwrap();
            cached.append(&mut cc, &[i; BS]).unwrap();
        }
        for (op, block, len, fill) in ops {
            let nblocks = plain.num_blocks();
            match op {
                0 => {
                    let start = block % nblocks;
                    let len = len.min(nblocks - start);
                    prop_assert_eq!(
                        plain.read_to_vec(&mut pc, start, len).unwrap(),
                        cached.read_to_vec(&mut cc, start, len).unwrap(),
                        "read [{}, {}) diverged", start, start + len
                    );
                }
                1 => {
                    let start = block % nblocks;
                    let len = len.min(nblocks - start);
                    let data = vec![fill; len as usize * BS];
                    plain.write_blocks(&mut pc, start, &data).unwrap();
                    cached.write_blocks(&mut cc, start, &data).unwrap();
                }
                _ => {
                    let data = vec![fill; len as usize * BS];
                    plain.append(&mut pc, &data).unwrap();
                    cached.append(&mut cc, &data).unwrap();
                }
            }
            prop_assert_eq!(plain.num_blocks(), cached.num_blocks());
        }
        // Final sweep: every block identical.
        let n = plain.num_blocks();
        prop_assert_eq!(
            plain.read_to_vec(&mut pc, 0, n).unwrap(),
            cached.read_to_vec(&mut cc, 0, n).unwrap()
        );
        // The cache can only save simulated time, never add it.
        prop_assert!(cc.io_time() <= pc.io_time(),
            "cached {} > plain {}", cc.io_time(), pc.io_time());
    }

    /// A read whose blocks are all resident charges zero simulated I/O.
    #[test]
    fn prop_resident_reads_are_free(start in 0u64..12, len in 1u64..5) {
        let mut dev = CachedDevice::new(Box::new(MemDevice::new(BS)), 16);
        let mut c = clock();
        for i in 0..16u8 {
            dev.append(&mut c, &[i; BS]).unwrap();
        }
        dev.clear(); // cold pool, warm contents
        let len = len.min(16 - start);
        let first = dev.read_to_vec(&mut c, start, len).unwrap();
        c.reset();
        let again = dev.read_to_vec(&mut c, start, len).unwrap();
        prop_assert_eq!(first, again);
        prop_assert_eq!(c.io_time(), 0.0);
        prop_assert_eq!(c.stats().seeks, 0);
        prop_assert_eq!(c.stats().blocks_read, 0);
    }
}
