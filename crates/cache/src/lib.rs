//! LRU block buffer cache.
//!
//! The paper's experiments (like most index evaluations of its era) assume
//! cold queries: every block access pays the disk. Real installations put
//! a buffer pool in front of the disk. [`CachedDevice`] wraps any
//! [`BlockDevice`] with an LRU cache of block frames:
//!
//! * a read whose blocks are *all* resident is served from memory and
//!   charges nothing to the simulated clock,
//! * any miss reads the whole requested range through to the device
//!   (charged as usual) and populates the cache,
//! * writes are write-through and update resident frames.
//!
//! The all-or-nothing policy keeps the cost semantics of ranged reads
//! simple and conservative: a partially resident run still pays the full
//! sweep, exactly like a real scatter-limited disk schedule would.
//!
//! # Thread safety
//!
//! Reads take `&self` (matching [`BlockDevice`]) and may run from many
//! threads sharing one device. Internally the frame pool is split into
//! shards, each guarded by its own mutex and running an independent LRU;
//! a block lives in shard `block % nshards`, so concurrent readers
//! touching different blocks rarely contend. Small caches use a single
//! shard and behave exactly like a global LRU. Writes keep `&mut self`
//! and are therefore exclusive, like every other device.

use iq_storage::{BlockDevice, IqResult, SimClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Doubly-linked LRU list over slab indices.
struct LruList {
    prev: Vec<usize>,
    next: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
}

const NIL: usize = usize::MAX;

/// Frames per shard below which sharding stops paying for itself; also the
/// shard-count cap. Capacities up to one shard's worth keep a single global
/// LRU (identical behavior to the unsharded cache).
const FRAMES_PER_SHARD: usize = 64;
const MAX_SHARDS: usize = 16;

impl LruList {
    fn new() -> Self {
        Self {
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn push_front(&mut self, slot: usize) {
        if slot >= self.prev.len() {
            self.prev.resize(slot + 1, NIL);
            self.next.resize(slot + 1, NIL);
        }
        self.prev[slot] = NIL;
        self.next[slot] = self.head;
        if self.head != NIL {
            self.prev[self.head] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let (p, n) = (self.prev[slot], self.next[slot]);
        if p != NIL {
            self.next[p] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n] = p;
        } else {
            self.tail = p;
        }
    }

    fn touch(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn pop_lru(&mut self) -> Option<usize> {
        let slot = self.tail;
        if slot == NIL {
            return None;
        }
        self.unlink(slot);
        Some(slot)
    }
}

/// Cache statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Ranged reads fully served from memory.
    pub hits: u64,
    /// Ranged reads that went to the device.
    pub misses: u64,
    /// Frames evicted.
    pub evictions: u64,
}

/// One lock's worth of frames: an independent LRU over the blocks hashed
/// to this shard.
struct Shard {
    capacity: usize,
    /// block index -> slot in `frames`.
    map: HashMap<u64, usize>,
    /// Frame slab; parallel to `blocks_of` (which block a slot holds).
    frames: Vec<Vec<u8>>,
    blocks_of: Vec<u64>,
    free: Vec<usize>,
    lru: LruList,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: HashMap::with_capacity(capacity),
            frames: Vec::new(),
            blocks_of: Vec::new(),
            free: Vec::new(),
            lru: LruList::new(),
        }
    }

    /// Copies the frame for `block` into `out` and marks it recently used.
    fn read_frame(&mut self, block: u64, out: &mut [u8]) -> bool {
        match self.map.get(&block) {
            Some(&slot) => {
                out.copy_from_slice(&self.frames[slot]);
                self.lru.touch(slot);
                true
            }
            None => false,
        }
    }

    /// Returns the number of evictions performed (0 or 1).
    fn insert_frame(&mut self, block: u64, data: Vec<u8>) -> u64 {
        if let Some(&slot) = self.map.get(&block) {
            self.frames[slot] = data;
            self.lru.touch(slot);
            return 0;
        }
        let mut evicted = 0;
        if self.map.len() >= self.capacity {
            if let Some(victim) = self.lru.pop_lru() {
                let old = self.blocks_of[victim];
                self.map.remove(&old);
                self.free.push(victim);
                evicted = 1;
            }
        }
        let slot = if let Some(slot) = self.free.pop() {
            self.frames[slot] = data;
            self.blocks_of[slot] = block;
            slot
        } else {
            self.frames.push(data);
            self.blocks_of.push(block);
            self.frames.len() - 1
        };
        self.map.insert(block, slot);
        self.lru.push_front(slot);
        evicted
    }
}

/// A sharded LRU cache of block frames in front of any [`BlockDevice`].
pub struct CachedDevice {
    inner: Box<dyn BlockDevice>,
    shards: Vec<Mutex<Shard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Global-registry mirrors of the counters above (near-no-ops while
    /// the registry is disabled).
    m_hits: iq_obs::Counter,
    m_misses: iq_obs::Counter,
    m_evictions: iq_obs::Counter,
}

impl CachedDevice {
    /// Wraps `inner` with a cache of `capacity_blocks` frames.
    ///
    /// # Panics
    /// Panics if `capacity_blocks == 0`.
    pub fn new(inner: Box<dyn BlockDevice>, capacity_blocks: usize) -> Self {
        assert!(capacity_blocks > 0, "cache needs at least one frame");
        let nshards = (capacity_blocks / FRAMES_PER_SHARD).clamp(1, MAX_SHARDS);
        let base = capacity_blocks / nshards;
        let rem = capacity_blocks % nshards;
        let shards = (0..nshards)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < rem))))
            .collect();
        let reg = iq_obs::global();
        Self {
            inner,
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            m_hits: reg.counter("cache_hits_total"),
            m_misses: reg.counter("cache_misses_total"),
            m_evictions: reg.counter("cache_evictions_total"),
        }
    }

    fn shard(&self, block: u64) -> &Mutex<Shard> {
        &self.shards[(block % self.shards.len() as u64) as usize]
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Total frame capacity across all shards.
    pub fn capacity(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").capacity)
            .sum()
    }

    /// Drops all resident frames and statistics (simulates a cold
    /// restart).
    pub fn clear(&mut self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let cap = shard.capacity;
            *shard = Shard::new(cap);
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    fn insert_frame(&self, block: u64, data: Vec<u8>) {
        let evicted = self
            .shard(block)
            .lock()
            .expect("cache shard poisoned")
            .insert_frame(block, data);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.m_evictions.add(evicted);
        }
    }
}

impl BlockDevice for CachedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn num_blocks(&self) -> u64 {
        self.inner.num_blocks()
    }

    fn read_blocks(&self, clock: &mut SimClock, start: u64, buf: &mut [u8]) -> IqResult<()> {
        let bs = self.block_size();
        assert_eq!(buf.len() % bs, 0, "partial-block read");
        let nblocks = (buf.len() / bs) as u64;
        // Optimistically serve from the cache block by block; the first
        // miss falls through to a full device read (all-or-nothing), which
        // overwrites whatever was already copied.
        let mut all_resident = true;
        for i in 0..nblocks {
            let off = (i as usize) * bs;
            let served = self
                .shard(start + i)
                .lock()
                .expect("cache shard poisoned")
                .read_frame(start + i, &mut buf[off..off + bs]);
            if !served {
                all_resident = false;
                break;
            }
        }
        if all_resident {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.m_hits.inc();
            clock.note_cache_hit();
            return Ok(());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.m_misses.inc();
        clock.note_cache_miss();
        // On failure nothing is cached: a later retry must hit the device
        // again, and corrupt bytes never become resident frames.
        self.inner.read_blocks(clock, start, buf)?;
        for i in 0..nblocks {
            let off = (i as usize) * bs;
            self.insert_frame(start + i, buf[off..off + bs].to_vec());
        }
        Ok(())
    }

    fn append(&mut self, clock: &mut SimClock, data: &[u8]) -> IqResult<u64> {
        let bs = self.block_size();
        let start = self.inner.append(clock, data)?;
        let nblocks = data.len().div_ceil(bs);
        for i in 0..nblocks {
            let lo = i * bs;
            let mut frame = vec![0u8; bs];
            let hi = ((i + 1) * bs).min(data.len());
            frame[..hi - lo].copy_from_slice(&data[lo..hi]);
            self.insert_frame(start + i as u64, frame);
        }
        Ok(start)
    }

    fn write_blocks(&mut self, clock: &mut SimClock, start: u64, data: &[u8]) -> IqResult<()> {
        let bs = self.block_size();
        self.inner.write_blocks(clock, start, data)?;
        for (i, chunk) in data.chunks_exact(bs).enumerate() {
            self.insert_frame(start + i as u64, chunk.to_vec());
        }
        Ok(())
    }

    fn truncate_blocks(&mut self, clock: &mut SimClock, nblocks: u64) -> IqResult<()> {
        self.inner.truncate_blocks(clock, nblocks)?;
        // Cheapest correct invalidation: drop every resident frame (frames
        // at or past the new length must not survive; truncation is rare).
        self.clear();
        Ok(())
    }

    fn device_id(&self) -> u64 {
        self.inner.device_id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iq_storage::{CpuModel, DiskModel, MemDevice};

    fn setup(cap: usize) -> (CachedDevice, SimClock) {
        let clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let dev = CachedDevice::new(Box::new(MemDevice::new(64)), cap);
        (dev, clock)
    }

    #[test]
    fn repeated_reads_are_free() {
        let (mut dev, mut clock) = setup(8);
        dev.append(&mut clock, &vec![7u8; 64 * 4]).unwrap();
        clock.reset();
        dev.clear();
        let a = dev.read_to_vec(&mut clock, 0, 2).unwrap();
        let t1 = clock.io_time();
        assert!(t1 > 0.0);
        let b = dev.read_to_vec(&mut clock, 0, 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(clock.io_time(), t1, "second read must be free");
        assert_eq!(dev.stats().hits, 1);
        assert_eq!(dev.stats().misses, 1);
    }

    #[test]
    fn clock_io_stats_mirror_cache_hits_and_misses() {
        let (mut dev, mut clock) = setup(8);
        dev.append(&mut clock, &vec![7u8; 64 * 4]).unwrap();
        clock.reset();
        dev.clear();
        dev.read_to_vec(&mut clock, 0, 2).unwrap(); // miss
        dev.read_to_vec(&mut clock, 0, 2).unwrap(); // hit
        dev.read_to_vec(&mut clock, 0, 1).unwrap(); // hit
        assert_eq!(clock.stats().cache_hits, 2);
        assert_eq!(clock.stats().cache_misses, 1);
        assert_eq!(dev.stats().hits, 2);
        assert_eq!(dev.stats().misses, 1);
    }

    #[test]
    fn partial_residency_reads_through() {
        let (mut dev, mut clock) = setup(8);
        dev.append(&mut clock, &vec![1u8; 64 * 4]).unwrap();
        dev.clear();
        clock.reset();
        dev.read_to_vec(&mut clock, 0, 1).unwrap(); // block 0 resident
        let t1 = clock.io_time();
        dev.read_to_vec(&mut clock, 0, 2).unwrap(); // block 1 missing -> full read
        assert!(clock.io_time() > t1);
        assert_eq!(dev.stats().misses, 2);
    }

    #[test]
    fn eviction_respects_lru_order() {
        let (mut dev, mut clock) = setup(2);
        dev.append(&mut clock, &vec![9u8; 64 * 4]).unwrap();
        dev.clear();
        dev.read_to_vec(&mut clock, 0, 1).unwrap();
        dev.read_to_vec(&mut clock, 1, 1).unwrap();
        dev.read_to_vec(&mut clock, 0, 1).unwrap(); // touch 0: LRU is now 1
        dev.read_to_vec(&mut clock, 2, 1).unwrap(); // evicts 1
        assert_eq!(dev.stats().evictions, 1);
        clock.reset();
        dev.read_to_vec(&mut clock, 0, 1).unwrap(); // still resident
        assert_eq!(clock.io_time(), 0.0);
        dev.read_to_vec(&mut clock, 1, 1).unwrap(); // was evicted
        assert!(clock.io_time() > 0.0);
    }

    #[test]
    fn writes_update_resident_frames() {
        let (mut dev, mut clock) = setup(4);
        dev.append(&mut clock, &[0u8; 64 * 2]).unwrap();
        dev.read_to_vec(&mut clock, 0, 1).unwrap();
        dev.write_blocks(&mut clock, 0, &[0xEEu8; 64]).unwrap();
        clock.reset();
        let got = dev.read_to_vec(&mut clock, 0, 1).unwrap();
        assert_eq!(got, vec![0xEEu8; 64]);
        assert_eq!(clock.io_time(), 0.0, "served from the updated frame");
    }

    #[test]
    fn cache_is_transparent_for_contents() {
        // Interleave reads/writes; cached contents must equal an uncached
        // device fed the same operations.
        let mut plain = MemDevice::new(32);
        let mut cached = CachedDevice::new(Box::new(MemDevice::new(32)), 3);
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        let mut c2 = SimClock::new(DiskModel::default(), CpuModel::free());
        for i in 0..10u8 {
            let data = vec![i; 32];
            plain.append(&mut c2, &data).unwrap();
            cached.append(&mut clock, &data).unwrap();
        }
        for step in 0..50u64 {
            let b = (step * 7) % 10;
            assert_eq!(
                plain.read_to_vec(&mut c2, b, 1),
                cached.read_to_vec(&mut clock, b, 1),
                "block {b}"
            );
            if step % 3 == 0 {
                let data = vec![(step % 251) as u8; 32];
                plain.write_blocks(&mut c2, b, &data).unwrap();
                cached.write_blocks(&mut clock, b, &data).unwrap();
            }
        }
        // The cached device must have paid no more than the plain one.
        assert!(clock.io_time() <= c2.io_time());
    }

    #[test]
    fn clear_forgets_everything() {
        let (mut dev, mut clock) = setup(4);
        dev.append(&mut clock, &[3u8; 64]).unwrap();
        dev.read_to_vec(&mut clock, 0, 1).unwrap();
        assert!(dev.resident() > 0);
        dev.clear();
        assert_eq!(dev.resident(), 0);
        clock.reset();
        dev.read_to_vec(&mut clock, 0, 1).unwrap();
        assert!(clock.io_time() > 0.0);
    }

    #[test]
    fn sharded_capacity_is_preserved_and_bounded() {
        let (mut dev, mut clock) = setup(640); // 10 shards of 64
        assert_eq!(dev.capacity(), 640);
        dev.append(&mut clock, &vec![5u8; 64 * 1000]).unwrap();
        dev.clear();
        for b in 0..1000u64 {
            dev.read_to_vec(&mut clock, b, 1).unwrap();
        }
        assert!(dev.resident() <= 640, "resident {}", dev.resident());
        assert!(dev.stats().evictions > 0);
    }

    #[test]
    fn concurrent_readers_see_correct_bytes() {
        let mut dev = CachedDevice::new(Box::new(MemDevice::new(64)), 256);
        let mut clock = SimClock::new(DiskModel::default(), CpuModel::free());
        for i in 0..64u64 {
            dev.append(&mut clock, &[(i % 251) as u8; 64]).unwrap();
        }
        let dev = &dev;
        std::thread::scope(|s| {
            for t in 0..8u64 {
                s.spawn(move || {
                    let mut c = SimClock::new(DiskModel::default(), CpuModel::free());
                    for round in 0..200u64 {
                        let b = (round * 13 + t * 7) % 64;
                        let got = dev.read_to_vec(&mut c, b, 1).unwrap();
                        assert_eq!(got, vec![(b % 251) as u8; 64], "block {b}");
                    }
                });
            }
        });
        let stats = dev.stats();
        assert_eq!(stats.hits + stats.misses, 8 * 200);
    }
}
