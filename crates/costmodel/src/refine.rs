//! Refinement-cost estimation (eqs 6–15).
//!
//! For a data page with MBR side lengths `s`, `m` points and quantization
//! resolution `g`, the model estimates how many of the page's points a
//! typical nearest-neighbor query must refine (look up in the exact file):
//!
//! 1. fractal point density inside the page, `ρ_F = m / V_page^{D_F/d}`
//!    (eq 13; eq 6 is the uniform special case `D_F = d`),
//! 2. the page-local NN radius `r` with `E[points in ball] = 1`
//!    (eqs 7/14),
//! 3. the quantization-cell sides `s_i / 2^g` (eq 10),
//! 4. the Minkowski sum of a cell and the NN sphere (eqs 11/12) — the
//!    region of query positions for which the cell cannot be pruned,
//! 5. the per-point refinement probability `V_mink^{D_F/d}` under the
//!    query-follows-data assumption (eq 15), times `m` points.
//!
//! The data space is assumed normalized to the unit cube (all workspace
//! generators guarantee this), so Minkowski volumes are directly
//! probabilities.

use iq_geometry::volume;
use iq_geometry::Metric;
use iq_quantize::EXACT_BITS;
use iq_storage::DiskModel;

/// Static parameters of the refinement model.
#[derive(Clone, Copy, Debug)]
pub struct RefineParams {
    /// Metric of the workload.
    pub metric: Metric,
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Correlation fractal dimension `D_F` of the data (use `d` for
    /// uniform/independent data).
    pub fractal_dim: f64,
    /// Total number of indexed points `N` (the query-follows-data density
    /// normalizer of eq 15).
    pub num_points: usize,
}

impl RefineParams {
    /// Uniform/independent special case: `D_F = d`.
    pub fn uniform(metric: Metric, dim: usize, num_points: usize) -> Self {
        Self {
            metric,
            dim,
            fractal_dim: dim as f64,
            num_points,
        }
    }

    /// With an estimated fractal dimension (clamped into `(0, d]`).
    pub fn fractal(metric: Metric, dim: usize, fractal_dim: f64, num_points: usize) -> Self {
        Self {
            metric,
            dim,
            fractal_dim: fractal_dim.clamp(0.1, dim as f64),
            num_points,
        }
    }

    /// The page-local nearest-neighbor radius (eqs 7/14): the radius of the
    /// ball that holds an expectation of one of the page's `m` points.
    pub fn nn_radius(&self, sides: &[f32], m: usize) -> f64 {
        self.knn_radius(sides, m, 1)
    }

    /// The k-NN extension of eqs 7/14 (the paper's footnote 1): the radius
    /// of the ball that holds an expectation of `k` of the page's `m`
    /// points. Under fractal scaling, `count(V) = m · (V/V_page)^{D_F/d}`,
    /// so `V = V_page · (k/m)^{d/D_F}`.
    pub fn knn_radius(&self, sides: &[f32], m: usize, k: usize) -> f64 {
        debug_assert_eq!(sides.len(), self.dim);
        assert!(k >= 1, "k must be at least 1");
        if m == 0 {
            return 0.0;
        }
        let v_page: f64 = sides.iter().map(|&s| f64::from(s)).product();
        let v = v_page * (k as f64 / m as f64).powf(self.dim as f64 / self.fractal_dim);
        volume::ball_radius(self.metric, self.dim, v)
    }
}

/// Expected number of exact look-ups a query triggers on a page with MBR
/// side lengths `sides`, `m` points, quantized at `g` bits per dimension
/// (eq 15 times `m`). Zero for the exact representation (`g == 32`).
///
/// Eq 15 states the refinement probability as "the fraction of all query
/// points located in the Minkowski enlargement" with a `P/N` prefactor.
/// Under the query-follows-data assumption, that fraction around a page
/// holding `m` of the `N` points is governed by the *local* query density:
/// `P_ref = (m/N) · (V_mink / V_page)^{D_F/d}`. For uniform data a page's
/// MBR covers `m/N` of the data space, so this reduces exactly to the
/// plain `V_mink` of the paper's uniform derivation; for clustered data it
/// correctly charges dense pages for the queries concentrated on them.
pub fn expected_refinements(p: &RefineParams, sides: &[f32], m: usize, g: u32) -> f64 {
    expected_refinements_knn(p, sides, m, g, 1)
}

/// [`expected_refinements`] for k-NN queries: the pruning sphere is the
/// k-NN sphere (paper footnote 1), so more points must be refined.
pub fn expected_refinements_knn(
    p: &RefineParams,
    sides: &[f32],
    m: usize,
    g: u32,
    k: usize,
) -> f64 {
    debug_assert_eq!(sides.len(), p.dim);
    if m == 0 || g >= EXACT_BITS {
        return 0.0;
    }
    let n = p.num_points.max(m) as f64;
    let v_page: f64 = sides.iter().map(|&s| f64::from(s)).product();
    if v_page <= 0.0 {
        // Fully degenerate page (duplicate points): the conservative bound.
        return m as f64 * (m as f64 / n).min(1.0);
    }
    let r = p.knn_radius(sides, m, k);
    let scale = f64::from(1u32 << g);
    let cell: Vec<f32> = sides
        .iter()
        .map(|&s| (f64::from(s) / scale) as f32)
        .collect();
    let v_mink = volume::minkowski_box_ball(p.metric, &cell, r);
    let ratio = (v_mink / v_page).max(0.0);
    let p_refine = ((m as f64 / n) * ratio.powf(p.fractal_dim / p.dim as f64)).min(1.0);
    m as f64 * p_refine
}

/// The modeled time cost of those refinements: each is a random access of
/// (at least) one block in the exact file.
pub fn refinement_cost(p: &RefineParams, disk: &DiskModel, sides: &[f32], m: usize, g: u32) -> f64 {
    expected_refinements(p, sides, m, g) * (disk.t_seek + disk.t_xfer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn params(d: usize) -> RefineParams {
        RefineParams::uniform(Metric::Euclidean, d, 100_000)
    }

    #[test]
    fn exact_pages_never_refine() {
        assert_eq!(
            expected_refinements(&params(4), &[0.5; 4], 100, EXACT_BITS),
            0.0
        );
    }

    #[test]
    fn empty_pages_never_refine() {
        assert_eq!(expected_refinements(&params(4), &[0.5; 4], 0, 4), 0.0);
    }

    #[test]
    fn nn_radius_uniform_case() {
        // Unit page with 1 point: ball volume 1 -> for L-inf r = 0.5.
        let p = RefineParams::uniform(Metric::Maximum, 3, 100_000);
        let r = p.nn_radius(&[1.0; 3], 1);
        assert!((r - 0.5).abs() < 1e-12);
        // 8 points: volume 1/8 -> r = 0.25.
        let r = p.nn_radius(&[1.0; 3], 8);
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fractal_radius_smaller_than_uniform() {
        // Lower fractal dimension -> points crowd a lower-dimensional
        // subset -> a query drawn from the data distribution finds its
        // nearest neighbor in a smaller ball.
        let d = 8;
        let uni = RefineParams::uniform(Metric::Euclidean, d, 100_000);
        let fr = RefineParams::fractal(Metric::Euclidean, d, 3.0, 100_000);
        let sides = [0.3f32; 8];
        assert!(fr.nn_radius(&sides, 50) < uni.nn_radius(&sides, 50));
    }

    #[test]
    fn monotone_decreasing_in_bits() {
        // Section 3.4: refinement cost decreases monotonically with g.
        let p = params(8);
        let sides = [0.2f32; 8];
        let mut prev = f64::INFINITY;
        for g in 1..=31 {
            let e = expected_refinements(&p, &sides, 200, g);
            assert!(e <= prev + 1e-12, "g={g}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn improvement_diminishes_with_bits() {
        // Section 3.4: the derivative is monotonically increasing, i.e. the
        // first split saves more than the next ("proceeding from 1 bit to 2
        // bits always improves ... the improvement is stronger than ... from
        // 2 bits to 4 bits").
        let p = params(8);
        let sides = [0.2f32; 8];
        let e: Vec<f64> = (1..=8)
            .map(|g| expected_refinements(&p, &sides, 200, g))
            .collect();
        for w in e.windows(3) {
            let gain1 = w[0] - w[1];
            let gain2 = w[1] - w[2];
            assert!(
                gain1 >= gain2 - 1e-12,
                "gains must diminish: {gain1} < {gain2}"
            );
        }
    }

    #[test]
    fn refinement_cost_scales_with_disk() {
        let p = params(4);
        let slow = DiskModel {
            t_seek: 0.02,
            t_xfer: 0.002,
            block_size: 8192,
        };
        let fast = DiskModel {
            t_seek: 0.005,
            t_xfer: 0.0005,
            block_size: 8192,
        };
        let sides = [0.5f32; 4];
        assert!(
            refinement_cost(&p, &slow, &sides, 100, 2) > refinement_cost(&p, &fast, &sides, 100, 2)
        );
    }

    #[test]
    fn knn_radius_monotone_in_k_and_reduces_to_nn() {
        let p = params(6);
        let sides = [0.4f32; 6];
        assert_eq!(p.knn_radius(&sides, 100, 1), p.nn_radius(&sides, 100));
        let mut prev = 0.0;
        for k in [1usize, 2, 5, 10, 50] {
            let r = p.knn_radius(&sides, 100, k);
            assert!(r > prev, "k={k}");
            prev = r;
        }
        // k = m: the sphere holds the whole page, volume = V_page.
        let r = p.knn_radius(&sides, 100, 100);
        let v = iq_geometry::volume::ball_volume(p.metric, 6, r);
        let v_page: f64 = sides.iter().map(|&s| f64::from(s)).product();
        assert!((v - v_page).abs() / v_page < 1e-9);
    }

    #[test]
    fn knn_refinements_increase_with_k() {
        let p = params(8);
        let sides = [0.3f32; 8];
        let mut prev = 0.0;
        for k in [1usize, 3, 10, 30] {
            let e = expected_refinements_knn(&p, &sides, 400, 6, k);
            assert!(e >= prev, "k={k}");
            prev = e;
        }
    }

    proptest! {
        /// Refinements never exceed the page population and are never
        /// negative.
        #[test]
        fn prop_bounded(
            m in 1usize..2000,
            g in 1u32..32,
            side in 0.01f32..1.0,
            d in 2usize..16,
            df_frac in 0.2f64..1.0,
        ) {
            let p = RefineParams::fractal(Metric::Euclidean, d, df_frac * d as f64, 10_000);
            let sides = vec![side; d];
            let e = expected_refinements(&p, &sides, m, g);
            prop_assert!(e >= 0.0);
            prop_assert!(e <= m as f64 + 1e-9);
        }

        /// Section 3.4's property on arbitrary page shapes: refinements
        /// decrease in g and the per-step gains diminish (the premise of
        /// the optimality proof).
        #[test]
        fn prop_monotone_and_diminishing_any_shape(
            sides in proptest::collection::vec(0.01f32..1.0, 2..12),
            m in 2usize..2000,
            df_frac in 0.3f64..1.0,
        ) {
            let d = sides.len();
            let p = RefineParams::fractal(Metric::Euclidean, d, df_frac * d as f64, 100_000);
            let e: Vec<f64> =
                (1..=12).map(|g| expected_refinements(&p, &sides, m, g)).collect();
            for w in e.windows(2) {
                prop_assert!(w[1] <= w[0] + 1e-12, "not monotone: {e:?}");
            }
            for w in e.windows(3) {
                let gain1 = w[0] - w[1];
                let gain2 = w[1] - w[2];
                prop_assert!(gain1 >= gain2 - 1e-9, "gains grow: {e:?}");
            }
        }

        /// More points in the same box -> smaller NN radius.
        #[test]
        fn prop_radius_monotone_in_population(
            m in 1usize..1000,
            d in 2usize..10,
        ) {
            let p = params(d);
            let sides = vec![0.4f32; d];
            prop_assert!(p.nn_radius(&sides, m + 1) <= p.nn_radius(&sides, m) + 1e-15);
        }
    }
}
