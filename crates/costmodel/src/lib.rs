//! The IQ-tree cost model (ICDE 2000, Sections 2.2 and 3.4).
//!
//! Three cost components drive every decision the IQ-tree makes:
//!
//! * `T_1st` — linear scan of the flat first-level directory (eq 22),
//! * `T_2nd` — optimized reading of the selected second-level (quantized)
//!   pages (eqs 16–21),
//! * `T_3rd` — refinements: random look-ups of exact point coordinates
//!   whenever a query cannot be decided on a point's approximation
//!   (eqs 6–15).
//!
//! `T_3rd` is the page-local "variable cost" the optimal-quantization
//! algorithm orders its split candidates by; `T_1st + T_2nd` is the
//! "constant cost" shared by every partition and depending only on the
//! partition count. The model supports non-uniform data through the
//! correlation fractal dimension `D_F` (eqs 13–15).
//!
//! The crate also provides the access probability of a data page during a
//! nearest-neighbor descent (eqs 2–5), which the time-optimized page-access
//! strategy of Section 2.1 trades against seek savings.

pub mod access_prob;
pub mod directory;
pub mod refine;

pub use access_prob::{access_probability, fraction_in_ball};
pub use directory::{
    expected_pages_accessed, expected_pages_accessed_knn, first_level_cost, second_level_cost,
    total_cost, DirectoryParams,
};
pub use refine::{expected_refinements, expected_refinements_knn, refinement_cost, RefineParams};
