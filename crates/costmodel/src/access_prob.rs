//! Access probability of a data page during nearest-neighbor search
//! (Section 2.2, eqs 2–5).
//!
//! A page `b_i` must be read iff none of the pages with higher priority
//! contains a point inside the *b_i-sphere* — the ball around the query
//! point touching `b_i` (radius `MINDIST(q, b_i)`). Under a uniform
//! within-page distribution, a page `b_k` holding `M_k` points avoids the
//! intersection with probability `(1 − V_int/V_MBR)^{M_k}` (eq 3), and the
//! access probability is the product over all higher-priority pages
//! (eq 2).

use iq_geometry::{Mbr, Metric};

/// The fraction of `mbr`'s volume that lies inside the metric ball of
/// radius `r` around `q` — `V_int/V_MBR` of eq 3, i.e. the probability
/// that a point uniformly distributed in the MBR falls inside the ball.
///
/// * **Maximum metric**: exact per-dimension clipping (eq 5 normalized).
/// * **Euclidean / Manhattan metrics**: the probability
///   `P(Σ g(x_i − q_i) ≤ budget)` (with `g = (·)²` resp. `|·|`) is computed
///   by discretized convolution of the exact per-dimension gap
///   distributions — accurate down to the small fractions the page
///   scheduler's decisions hinge on, where both fill-factor scalings
///   (collapse to 0 as `d` grows) and CLT tails (wrong by orders of
///   magnitude) fail.
///
/// Zero-extent dimensions contribute their deterministic gap.
pub fn fraction_in_ball(metric: Metric, mbr: &Mbr, q: &[f32], r: f64) -> f64 {
    debug_assert_eq!(q.len(), mbr.dim());
    if r <= 0.0 {
        return 0.0;
    }
    // Exact saturation at the boundaries (the convolution below only
    // needs to resolve the strict interior).
    if metric.mindist(q, mbr) > r {
        return 0.0;
    }
    if metric.maxdist(q, mbr) <= r {
        return 1.0;
    }
    match metric {
        Metric::Maximum => {
            let mut frac = 1.0f64;
            for (i, &qi) in q.iter().enumerate() {
                let qi = f64::from(qi);
                let lo = f64::from(mbr.lb(i)).max(qi - r);
                let hi = f64::from(mbr.ub(i)).min(qi + r);
                let clipped = (hi - lo).max(0.0);
                let ext = mbr.extent(i);
                if ext == 0.0 {
                    // Degenerate dimension: inside the slab or not.
                    let x = f64::from(mbr.lb(i));
                    if !(qi - r..=qi + r).contains(&x) {
                        return 0.0;
                    }
                } else {
                    frac *= clipped / ext;
                    if frac == 0.0 {
                        return 0.0;
                    }
                }
            }
            frac
        }
        Metric::Euclidean => conv_fraction(mbr, q, r * r, Gap::Squared),
        Metric::Manhattan => conv_fraction(mbr, q, r, Gap::Absolute),
    }
}

/// The per-dimension gap transform of the summed metric.
#[derive(Clone, Copy)]
enum Gap {
    /// `(x - q)²` — Euclidean.
    Squared,
    /// `|x - q|` — Manhattan.
    Absolute,
}

impl Gap {
    #[inline]
    fn apply(self, v: f64) -> f64 {
        match self {
            Gap::Squared => v * v,
            Gap::Absolute => v.abs(),
        }
    }

    /// The positive root `s` with `gap(s) = t`.
    #[inline]
    fn root(self, t: f64) -> f64 {
        match self {
            Gap::Squared => t.sqrt(),
            Gap::Absolute => t,
        }
    }
}

/// Number of convolution bins (trade-off: accuracy of the small fractions
/// the page scheduler's decisions hinge on vs O(d·B²) work per call).
const CONV_BINS: usize = 64;

/// `P(Σ_i gap(x_i − q_i) ≤ budget)` for `x` uniform in `mbr`, by
/// convolving the discretized per-dimension gap distributions
/// (round-to-nearest binning; mass beyond the budget is dropped — under a
/// non-negative sum it can never come back).
fn conv_fraction(mbr: &Mbr, q: &[f32], budget: f64, gap: Gap) -> f64 {
    if budget <= 0.0 {
        return 0.0;
    }
    let b = CONV_BINS;
    let h = budget / b as f64;
    let mut pmf = vec![0.0f64; b];
    pmf[0] = 1.0;
    let mut scratch = vec![0.0f64; b];
    let mut mass = vec![0.0f64; b];
    for (i, &qi) in q.iter().enumerate() {
        let lo = f64::from(mbr.lb(i)) - f64::from(qi);
        let hi = f64::from(mbr.ub(i)) - f64::from(qi);
        let w = hi - lo;
        if w <= 0.0 {
            // Deterministic gap: shift the whole pmf.
            let shift = (gap.apply(lo) / h).round() as usize;
            if shift > 0 {
                if shift >= b {
                    return 0.0;
                }
                for j in (0..b).rev() {
                    pmf[j] = if j >= shift { pmf[j - shift] } else { 0.0 };
                }
            }
            continue;
        }
        // CDF of gap(x - q): {gap ≤ t} = [-s, s] with s the positive root,
        // so the clipped interval length is exact.
        let cdf = |t: f64| -> f64 {
            if t <= 0.0 {
                return f64::from(lo <= 0.0 && 0.0 <= hi);
            }
            let s = gap.root(t);
            ((hi.min(s) - lo.max(-s)).max(0.0) / w).min(1.0)
        };
        // Per-dimension bin masses with round-to-nearest representatives.
        let mut prev = 0.0f64;
        for (k, mk) in mass.iter_mut().enumerate() {
            let c = cdf((k as f64 + 0.5) * h);
            *mk = (c - prev).max(0.0);
            prev = c;
        }
        // Convolve, dropping mass that exceeds the budget.
        scratch.fill(0.0);
        for (j, &pj) in pmf.iter().enumerate() {
            if pj <= 0.0 {
                continue;
            }
            for (k, &mk) in mass.iter().take(b - j).enumerate() {
                scratch[j + k] += pj * mk;
            }
        }
        std::mem::swap(&mut pmf, &mut scratch);
        if pmf.iter().sum::<f64>() < 1e-15 {
            return 0.0;
        }
    }
    pmf.iter().sum::<f64>().clamp(0.0, 1.0)
}

/// Eq 2: the probability that page `target` must be accessed, given the
/// pages ahead of it in the priority list (each with its MBR and point
/// count). `r` is the target's MINDIST from the query — the b_i-sphere
/// radius.
pub fn access_probability<'a>(
    metric: Metric,
    q: &[f32],
    r: f64,
    higher_priority: impl Iterator<Item = (&'a Mbr, usize)>,
) -> f64 {
    let mut p = 1.0f64;
    for (mbr, m) in higher_priority {
        if m == 0 {
            continue;
        }
        let frac = fraction_in_ball(metric, mbr, q, r);
        if frac >= 1.0 {
            return 0.0;
        }
        // Eq 3: probability that none of the m points falls in the
        // intersection.
        p *= (1.0 - frac).powi(m as i32);
        if p < 1e-12 {
            return 0.0;
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit(d: usize) -> Mbr {
        Mbr::from_bounds(vec![0.0; d], vec![1.0; d])
    }

    #[test]
    fn no_competitors_means_certain_access() {
        let p = access_probability(Metric::Euclidean, &[0.5, 0.5], 0.3, std::iter::empty());
        assert_eq!(p, 1.0);
    }

    #[test]
    fn engulfed_competitor_prunes() {
        // A competitor fully inside the sphere definitely holds a closer
        // point -> access probability 0.
        let inner = Mbr::from_bounds(vec![0.45, 0.45], vec![0.55, 0.55]);
        let p = access_probability(
            Metric::Maximum,
            &[0.5, 0.5],
            0.2,
            [(&inner, 10usize)].into_iter(),
        );
        assert_eq!(p, 0.0);
    }

    #[test]
    fn disjoint_competitor_is_irrelevant() {
        let far = Mbr::from_bounds(vec![10.0, 10.0], vec![11.0, 11.0]);
        let p = access_probability(
            Metric::Euclidean,
            &[0.5, 0.5],
            0.2,
            [(&far, 1000usize)].into_iter(),
        );
        assert_eq!(p, 1.0);
    }

    #[test]
    fn more_points_lower_probability() {
        let m = unit(2);
        let q = [0.5f32, 0.5];
        let p10 = access_probability(Metric::Maximum, &q, 0.25, [(&m, 10usize)].into_iter());
        let p100 = access_probability(Metric::Maximum, &q, 0.25, [(&m, 100usize)].into_iter());
        assert!(p100 < p10);
        assert!(p10 < 1.0);
    }

    #[test]
    fn max_metric_fraction_exact() {
        // Ball of radius 0.25 centered in the unit square covers a 0.5x0.5
        // box -> fraction 0.25.
        let f = fraction_in_ball(Metric::Maximum, &unit(2), &[0.5, 0.5], 0.25);
        assert!((f - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_mbr_inside_and_outside() {
        let flat = Mbr::from_bounds(vec![0.5, 0.0], vec![0.5, 1.0]);
        // Slab [0.3, 0.7] covers x = 0.5.
        let f = fraction_in_ball(Metric::Maximum, &flat, &[0.5, 0.5], 0.2);
        assert!((f - 0.4).abs() < 1e-12); // y-clip 0.4 / extent 1.0
                                          // Slab [0.0, 0.2] misses x = 0.5.
        let f = fraction_in_ball(Metric::Maximum, &flat, &[0.1, 0.5], 0.1);
        assert_eq!(f, 0.0);
    }

    #[test]
    fn zero_radius_zero_fraction() {
        assert_eq!(
            fraction_in_ball(Metric::Euclidean, &unit(3), &[0.5; 3], 0.0),
            0.0
        );
    }

    #[test]
    fn euclidean_fraction_matches_qmc() {
        // The convolution estimate must track a quasi-Monte-Carlo ground
        // truth across regimes (small ball, half-covering ball, off-center
        // query) and dimensions.
        use iq_geometry::volume::box_ball_intersection_qmc;
        for d in [2usize, 4, 8] {
            let m = unit(d);
            for (q_off, r_frac) in [(0.5f32, 0.3), (0.5, 0.8), (0.2, 0.5), (0.9, 0.2)] {
                let q = vec![q_off; d];
                let r = r_frac * (d as f64).sqrt() * 0.5;
                let est = fraction_in_ball(Metric::Euclidean, &m, &q, r);
                let truth = box_ball_intersection_qmc(Metric::Euclidean, &m, &q, r, 100_000);
                let err = (est - truth).abs();
                assert!(
                    err < 0.05 || (truth > 1e-6 && (est / truth) < 2.5 && (truth / est) < 2.5),
                    "d={d} q={q_off} r={r:.3}: est {est} vs qmc {truth}"
                );
            }
        }
    }

    #[test]
    fn manhattan_fraction_matches_qmc() {
        use iq_geometry::volume::box_ball_intersection_qmc;
        let d = 4;
        let m = unit(d);
        let q = vec![0.4f32; d];
        for r in [0.5, 1.0, 1.5] {
            let est = fraction_in_ball(Metric::Manhattan, &m, &q, r);
            let truth = box_ball_intersection_qmc(Metric::Manhattan, &m, &q, r, 100_000);
            assert!((est - truth).abs() < 0.05, "r={r}: {est} vs {truth}");
        }
    }

    proptest! {
        /// The fraction is always a probability, and it saturates correctly
        /// when the box is entirely inside or entirely outside the ball.
        #[test]
        fn prop_fraction_is_probability(
            q in proptest::collection::vec(-0.5f32..1.5, 4),
            r in 0.0f64..2.0,
        ) {
            let m = unit(4);
            for metric in [Metric::Euclidean, Metric::Maximum, Metric::Manhattan] {
                let f = fraction_in_ball(metric, &m, &q, r);
                prop_assert!((0.0..=1.0).contains(&f), "{metric:?}: {f}");
                if metric.maxdist(&q, &m) <= r {
                    prop_assert!(f > 0.99, "{metric:?}: box inside ball, f = {f}");
                }
                if metric.mindist(&q, &m) > r {
                    prop_assert!(f < 0.01, "{metric:?}: box outside ball, f = {f}");
                }
            }
        }

        /// Access probability is monotone: growing the sphere radius can
        /// only decrease it.
        #[test]
        fn prop_access_monotone_in_radius(
            r1 in 0.01f64..0.5,
            dr in 0.0f64..0.5,
        ) {
            let m1 = Mbr::from_bounds(vec![0.2, 0.2], vec![0.6, 0.6]);
            let m2 = Mbr::from_bounds(vec![0.5, 0.1], vec![0.9, 0.5]);
            let q = [0.4f32, 0.4];
            let hp = || [(&m1, 20usize), (&m2, 35usize)].into_iter();
            let p_small = access_probability(Metric::Euclidean, &q, r1, hp());
            let p_big = access_probability(Metric::Euclidean, &q, r1 + dr, hp());
            prop_assert!(p_big <= p_small + 1e-12);
        }
    }
}
