//! Directory-level cost estimation (eqs 16–22) and the total (eq 23).

use iq_geometry::{volume, Metric};
use iq_storage::DiskModel;

/// Parameters describing the directory levels of an IQ-tree-like index.
#[derive(Clone, Copy, Debug)]
pub struct DirectoryParams {
    /// Metric of the workload.
    pub metric: Metric,
    /// Embedding dimensionality `d`.
    pub dim: usize,
    /// Correlation fractal dimension `D_F`.
    pub fractal_dim: f64,
    /// Total number of indexed points `N`.
    pub num_points: usize,
    /// Bytes per first-level directory entry (MBR + pointer).
    pub dir_entry_bytes: usize,
}

impl DirectoryParams {
    /// Default entry size: `2·d` f32 bounds plus an 8-byte page reference.
    pub fn new(metric: Metric, dim: usize, fractal_dim: f64, num_points: usize) -> Self {
        Self {
            metric,
            dim,
            fractal_dim: fractal_dim.clamp(0.1, dim as f64),
            num_points,
            dir_entry_bytes: 8 * dim + 8,
        }
    }
}

/// `T_1st` (eq 22): one sequential read of the flat directory holding `n`
/// entries.
pub fn first_level_cost(p: &DirectoryParams, disk: &DiskModel, n: usize) -> f64 {
    disk.scan_cost(disk.blocks_for(n * p.dir_entry_bytes))
}

/// Expected number of second-level pages a nearest-neighbor query must read
/// (eqs 16–18): `k = n · V_mink(MBR, NN-sphere)^{D_F/d}` with the typical
/// page region a cube of volume `(1/n)^{d/D_F}` and the NN sphere of volume
/// `(1/N)^{d/D_F}`, both Minkowski-clipped against the unit data space
/// (the boundary-effect adaptation the paper refers to \[8\] for).
pub fn expected_pages_accessed(p: &DirectoryParams, n: usize) -> f64 {
    expected_pages_accessed_knn(p, n, 1)
}

/// [`expected_pages_accessed`] for k-NN queries (the paper's footnote 1):
/// the pruning sphere holds an expectation of `k` points, so its volume is
/// `(k/N)^{d/D_F}` instead of `(1/N)^{d/D_F}`.
pub fn expected_pages_accessed_knn(p: &DirectoryParams, n: usize, k: usize) -> f64 {
    assert!(k >= 1, "k must be at least 1");
    if n == 0 {
        return 0.0;
    }
    let d = p.dim as f64;
    let v_mbr = (1.0 / n as f64).powf(d / p.fractal_dim).min(1.0);
    let v_sphere = (k as f64 / p.num_points.max(1) as f64)
        .powf(d / p.fractal_dim)
        .min(1.0);
    let side = v_mbr.powf(1.0 / d);
    let r = volume::ball_radius(p.metric, p.dim, v_sphere);
    // Boundary clipping: no side of the Minkowski enlargement can exceed
    // the data space extent 1.
    let sides = vec![(side.min(1.0)) as f32; p.dim];
    let clipped: Vec<f32> = sides
        .iter()
        .map(|&s| (f64::from(s) + 2.0 * r).min(1.0) as f32)
        .collect();
    // The clipping above already accounts for the ball enlargement, so take
    // the plain box volume of the clipped enlargement. (The branch switch
    // makes the estimate only piecewise-smooth in `r` — and therefore in
    // `k` — which the cost audit tolerances account for.)
    let v_mink = if clipped
        .iter()
        .any(|&c| f64::from(c) < f64::from(sides[0]) + 2.0 * r)
    {
        clipped.iter().map(|&c| f64::from(c)).product::<f64>()
    } else {
        volume::minkowski_box_ball(p.metric, &sides, r)
    }
    .min(1.0);
    let frac = v_mink.powf(p.fractal_dim / d).min(1.0);
    (n as f64 * frac).max(1.0).min(n as f64)
}

/// `T_2nd` (eqs 19–21): the cost of reading `k` of `n` uniformly spread
/// pages with the optimal seek/over-read trade-off.
///
/// Computed by direct expectation over the geometric gap distribution
/// rather than the paper's closed form — same model, fewer algebra
/// hazards: with selection probability `q = k/n`, the distance to the next
/// selected page is `a` with probability `q(1-q)^{a-1}`; distances within
/// the over-read horizon `v = t_seek/t_xfer` are read through (`a·t_xfer`),
/// longer ones seek (`t_seek + t_xfer`).
pub fn second_level_cost(p: &DirectoryParams, disk: &DiskModel, n: usize) -> f64 {
    let k = expected_pages_accessed(p, n);
    second_level_cost_for_k(disk, n, k)
}

/// `T_2nd` for an explicit expected page count `k`.
pub fn second_level_cost_for_k(disk: &DiskModel, n: usize, k: f64) -> f64 {
    if n == 0 || k <= 0.0 {
        return 0.0;
    }
    let k = k.min(n as f64);
    let q = (k / n as f64).clamp(f64::MIN_POSITIVE, 1.0);
    let v = disk.overread_horizon().floor() as u64;
    // Expected cost of one transition to the next selected page.
    let mut through = 0.0;
    let mut tail = 1.0; // P(dist > a) running value
    for a in 1..=v {
        let p_eq = q * (1.0 - q).powi((a - 1) as i32);
        through += p_eq * a as f64 * disk.t_xfer;
        tail -= p_eq;
    }
    let transition = through + tail.max(0.0) * (disk.t_seek + disk.t_xfer);
    disk.t_seek + disk.t_xfer + (k - 1.0).max(0.0) * transition
}

/// `T_1st + T_2nd` — the "constant cost" of a partitioning with `n` pages,
/// shared by every partition (Section 3.5).
pub fn constant_cost(p: &DirectoryParams, disk: &DiskModel, n: usize) -> f64 {
    first_level_cost(p, disk, n) + second_level_cost(p, disk, n)
}

/// `T = T_1st + T_2nd + T_3rd` (eq 23), where the caller supplies the summed
/// refinement (variable) cost of all pages.
pub fn total_cost(
    p: &DirectoryParams,
    disk: &DiskModel,
    n: usize,
    summed_refinement_cost: f64,
) -> f64 {
    constant_cost(p, disk, n) + summed_refinement_cost
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(dim: usize, n_points: usize) -> DirectoryParams {
        DirectoryParams::new(Metric::Euclidean, dim, dim as f64, n_points)
    }

    fn disk() -> DiskModel {
        DiskModel::default()
    }

    #[test]
    fn first_level_is_linear_in_pages() {
        let p = params(16, 100_000);
        let d = disk();
        let c1 = first_level_cost(&p, &d, 100);
        let c2 = first_level_cost(&p, &d, 10_000);
        assert!(c2 > c1);
        // Slope ~ entry_bytes/block per page.
        let per_page = (c2 - c1) / 9_900.0;
        let expect = p.dir_entry_bytes as f64 / d.block_size as f64 * d.t_xfer;
        assert!(
            (per_page - expect).abs() / expect < 0.05,
            "{per_page} vs {expect}"
        );
    }

    #[test]
    fn expected_pages_at_least_one_at_most_n() {
        for dim in [2usize, 8, 16] {
            let p = params(dim, 500_000);
            for n in [1usize, 10, 1000, 100_000] {
                let k = expected_pages_accessed(&p, n);
                assert!(k >= 1.0 && k <= n as f64, "dim={dim} n={n}: k={k}");
            }
        }
    }

    #[test]
    fn knn_accesses_more_pages_than_nn() {
        let p = params(8, 200_000);
        let n = 2_000;
        assert_eq!(
            expected_pages_accessed(&p, n),
            expected_pages_accessed_knn(&p, n, 1)
        );
        let base = expected_pages_accessed(&p, n);
        for k in [2usize, 5, 20, 100] {
            let pages = expected_pages_accessed_knn(&p, n, k);
            // A k-NN sphere holds the NN sphere, so the estimate can only
            // grow relative to k = 1. (Across arbitrary k pairs the branchy
            // boundary clipping makes it only piecewise-monotone.)
            assert!(pages >= base, "k={k}: {pages} < {base}");
            assert!(pages >= 1.0 && pages <= n as f64, "k={k}");
        }
    }

    #[test]
    fn high_dim_accesses_larger_fraction() {
        // The dimensionality curse: at fixed n and N, the accessed fraction
        // k/n grows with the dimension.
        let n = 1000;
        let lo = expected_pages_accessed(&params(4, 500_000), n);
        let hi = expected_pages_accessed(&params(16, 500_000), n);
        assert!(hi > lo, "low-d {lo} vs high-d {hi}");
    }

    #[test]
    fn second_level_cost_bounds() {
        let d = disk();
        // Reading all n pages must cost at most ~a scan and at least the
        // transfer of all blocks.
        let n = 1000;
        let all = second_level_cost_for_k(&d, n, n as f64);
        assert!(all >= n as f64 * d.t_xfer);
        assert!(all <= d.scan_cost(n as u64) + 1e-9);
        // Reading one page costs one random access.
        let one = second_level_cost_for_k(&d, n, 1.0);
        assert!((one - (d.t_seek + d.t_xfer)).abs() < 1e-12);
    }

    #[test]
    fn second_level_cost_monotone_in_k() {
        let d = disk();
        let mut prev = 0.0;
        for k in [1.0, 5.0, 50.0, 200.0, 999.0] {
            let c = second_level_cost_for_k(&d, 1000, k);
            assert!(c >= prev, "k={k}");
            prev = c;
        }
    }

    #[test]
    fn sparse_selection_costs_like_random_io() {
        let d = disk();
        // 10 pages out of a million: gaps are huge -> pure random accesses.
        let c = second_level_cost_for_k(&d, 1_000_000, 10.0);
        assert!((c - 10.0 * (d.t_seek + d.t_xfer)).abs() / c < 0.01);
    }

    #[test]
    fn total_adds_up() {
        let p = params(8, 100_000);
        let d = disk();
        let t = total_cost(&p, &d, 500, 0.25);
        assert!(
            (t - (first_level_cost(&p, &d, 500) + second_level_cost(&p, &d, 500) + 0.25)).abs()
                < 1e-12
        );
    }
}
