//! Property tests: histogram bucketing and quantiles against a
//! sorted-vector oracle, plus registry snapshot diffing.

use iq_obs::{bucket_bounds, bucket_index, Registry};
use proptest::prelude::*;

/// Positive values spanning ~12 orders of magnitude, with duplicates.
fn value_strategy() -> impl Strategy<Value = f64> {
    (0u32..10_000, -6i32..6).prop_map(|(m, e)| (f64::from(m % 97) + 1.0) * 10f64.powi(e))
}

/// Nearest-rank oracle under the same convention as
/// `HistogramSnapshot::quantile`: the `ceil(q·n)`-th smallest (1-based).
fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let target = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn values_land_in_correct_log_buckets(
        values in proptest::collection::vec(value_strategy(), 1..200),
    ) {
        let reg = Registry::new();
        let h = reg.histogram("vals");
        for &v in &values {
            h.observe(v);
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            prop_assert!(lo <= v && v < hi, "{} not in [{}, {}) (bucket {})", v, lo, hi, i);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
        prop_assert!((snap.sum - values.iter().sum::<f64>()).abs() <= snap.sum.abs() * 1e-9);
    }

    #[test]
    fn quantiles_within_one_bucket_of_oracle(
        values in proptest::collection::vec(value_strategy(), 1..300),
        qi in 0usize..5,
    ) {
        let q = [0.0, 0.5, 0.9, 0.99, 1.0][qi];
        let reg = Registry::new();
        let h = reg.histogram("q");
        for &v in &values {
            h.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let want = oracle_quantile(&sorted, q);
        let got = h.snapshot().quantile(q);
        // Same rank convention on both sides, so the estimate must sit in
        // the same log bucket as the true value, ± one bucket for values
        // on a boundary.
        let db = bucket_index(got) as i64 - bucket_index(want) as i64;
        prop_assert!(db.abs() <= 1, "q={} got={} want={} bucket delta={}", q, got, want, db);
    }

    #[test]
    fn snapshot_diff_recovers_second_batch(
        first in proptest::collection::vec(value_strategy(), 0..100),
        second in proptest::collection::vec(value_strategy(), 0..100),
        bump in 1u64..50,
    ) {
        let reg = Registry::new();
        let h = reg.histogram("lat");
        let c = reg.counter("ops");
        for &v in &first {
            h.observe(v);
        }
        c.add(bump);
        let before = reg.snapshot();
        for &v in &second {
            h.observe(v);
        }
        c.add(bump * 2);
        let after = reg.snapshot();
        let d = after.diff(&before);
        // The diff must contain exactly the second batch.
        prop_assert_eq!(d.counters["ops"], bump * 2);
        let dh = &d.histograms["lat"];
        prop_assert_eq!(dh.count, second.len() as u64);
        let fresh = Registry::new();
        let oracle = fresh.histogram("lat");
        for &v in &second {
            oracle.observe(v);
        }
        prop_assert_eq!(&dh.buckets, &oracle.snapshot().buckets);
    }
}

#[test]
fn disabled_registry_records_nothing() {
    let reg = Registry::disabled();
    let c = reg.counter("n");
    let h = reg.histogram("h");
    let g = reg.gauge("g");
    c.inc();
    h.observe(1.0);
    g.set(2.5);
    assert_eq!(c.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    assert_eq!(g.get(), 0.0);
    reg.set_enabled(true);
    c.inc();
    h.observe(1.0);
    g.set(2.5);
    assert_eq!(c.get(), 1);
    assert_eq!(h.snapshot().count, 1);
    assert_eq!(g.get(), 2.5);
}

#[test]
fn exposition_formats_cover_every_metric() {
    let reg = Registry::new();
    reg.counter("pages_total").add(7);
    reg.gauge("cache_fill").set(0.5);
    let h = reg.histogram("query_seconds");
    h.observe(1e-3);
    h.observe(2e-3);
    let prom = reg.to_prometheus();
    assert!(prom.contains("# TYPE pages_total counter"));
    assert!(prom.contains("pages_total 7"));
    assert!(prom.contains("# TYPE cache_fill gauge"));
    assert!(prom.contains("# TYPE query_seconds histogram"));
    assert!(prom.contains("query_seconds_bucket{le=\"+Inf\"} 2"));
    assert!(prom.contains("query_seconds_count 2"));
    let json = reg.to_json();
    for key in [
        "\"counters\"",
        "\"gauges\"",
        "\"histograms\"",
        "\"pages_total\": 7",
        "\"count\": 2",
        "\"p50\"",
        "\"p90\"",
        "\"p99\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
