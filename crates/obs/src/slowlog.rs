//! Retained slow-query forensics: a 1-in-N sampler plus a bounded
//! in-memory log of the slowest sampled queries, full trace trees
//! included.
//!
//! The sampler decides *which* queries get a trace at all (tracing a
//! query costs allocations, so the unsampled path must stay free); the
//! log then keeps only the top-K slowest by simulated time. Both are
//! cheap enough to leave always-on in drivers: one atomic per query for
//! the sampler, one short mutex hold per *sampled* query for the log.
//!
//! The log serializes to JSON (`iq query`/`iq batch`/`iq bench` persist
//! it next to the index) and loads back via [`SlowLog::load_json`] so
//! `iq stats --slow` can render traces recorded by an earlier process.

use crate::json::{escape, parse, JsonValue};
use crate::registry::json_f64;
use crate::tracetree::{TraceNode, TraceTree};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};

/// Default sampling rate: trace one query in this many.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;
/// Default retention: keep this many slowest traces.
pub const DEFAULT_RETAIN: usize = 16;

/// One retained slow query.
#[derive(Clone, Debug, PartialEq)]
pub struct SlowEntry {
    /// Where the query came from (`"iqtree k=10 q17"`, ...).
    pub label: String,
    /// Total simulated seconds (the retention key).
    pub sim: f64,
    /// Total wall seconds.
    pub wall: f64,
    /// Sample sequence number (position in the sampled stream).
    pub seq: u64,
    /// The full span tree.
    pub tree: TraceTree,
}

/// Sampler + bounded top-K-slowest retention.
pub struct SlowLog {
    sample_every: AtomicU64,
    seen: AtomicU64,
    sampled: AtomicU64,
    retain: usize,
    /// Slowest-first, at most `retain` entries.
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A log sampling 1 in `sample_every` queries and retaining the
    /// `retain` slowest. `sample_every` of 0 disables sampling entirely;
    /// 1 samples everything.
    pub fn new(sample_every: u64, retain: usize) -> Self {
        SlowLog {
            sample_every: AtomicU64::new(sample_every),
            seen: AtomicU64::new(0),
            sampled: AtomicU64::new(0),
            retain: retain.max(1),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide slow log (1-in-64 sampling, top-16 retained).
    pub fn global() -> &'static SlowLog {
        static GLOBAL: OnceLock<SlowLog> = OnceLock::new();
        GLOBAL.get_or_init(|| SlowLog::new(DEFAULT_SAMPLE_EVERY, DEFAULT_RETAIN))
    }

    /// Changes the sampling rate (0 disables, 1 samples everything).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n, Relaxed);
    }

    /// Counts one query and reports whether it should be traced. The
    /// first query is always sampled (so short runs still retain
    /// something), then every `sample_every`-th after it.
    pub fn should_sample(&self) -> bool {
        let every = self.sample_every.load(Relaxed);
        if every == 0 {
            return false;
        }
        let n = self.seen.fetch_add(1, Relaxed);
        n.is_multiple_of(every)
    }

    /// Offers a completed trace; it is retained if the log is not full
    /// or the query is slower than the current fastest retained entry.
    /// Returns the sample sequence number assigned to it.
    pub fn offer(&self, label: &str, tree: TraceTree) -> u64 {
        let seq = self.sampled.fetch_add(1, Relaxed);
        let entry = SlowEntry {
            label: label.to_string(),
            sim: tree.root.sim,
            wall: tree.root.wall,
            seq,
            tree,
        };
        let mut entries = self.entries.lock().expect("slow log poisoned");
        let pos = entries
            .iter()
            .position(|e| e.sim < entry.sim)
            .unwrap_or(entries.len());
        if pos < self.retain {
            entries.insert(pos, entry);
            entries.truncate(self.retain);
        }
        seq
    }

    /// Queries counted by [`SlowLog::should_sample`] so far.
    pub fn seen(&self) -> u64 {
        self.seen.load(Relaxed)
    }

    /// Retained entries, slowest first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        self.entries.lock().expect("slow log poisoned").clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("slow log poisoned").len()
    }

    /// Whether anything is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained entries (the sampler state stays).
    pub fn clear(&self) {
        self.entries.lock().expect("slow log poisoned").clear();
    }

    /// Serializes the retained entries as a JSON document.
    pub fn to_json(&self) -> String {
        let entries = self.entries.lock().expect("slow log poisoned");
        let mut out = String::from("{\n  \"slow_queries\": [\n");
        for (i, e) in entries.iter().enumerate() {
            let sep = if i + 1 == entries.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"label\": \"{}\", \"sim\": {}, \"wall\": {}, \"seq\": {}, \"trace\": {}}}{sep}\n",
                escape(&e.label),
                json_f64(e.sim),
                json_f64(e.wall),
                e.seq,
                e.tree.root.to_json()
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"seen\": {},\n  \"sample_every\": {},\n  \"retain\": {}\n}}\n",
            self.seen.load(Relaxed),
            self.sample_every.load(Relaxed),
            self.retain
        ));
        out
    }

    /// Parses a [`SlowLog::to_json`] document back into entries.
    pub fn load_json(doc: &str) -> Result<Vec<SlowEntry>, String> {
        let v = parse(doc)?;
        let items = v
            .get("slow_queries")
            .and_then(JsonValue::as_arr)
            .ok_or("missing slow_queries array")?;
        items
            .iter()
            .map(|item| {
                let root = TraceNode::from_json(item.get("trace").ok_or("entry missing trace")?)?;
                Ok(SlowEntry {
                    label: item
                        .get("label")
                        .and_then(JsonValue::as_str)
                        .unwrap_or("")
                        .to_string(),
                    sim: item.get("sim").and_then(JsonValue::as_f64).unwrap_or(0.0),
                    wall: item.get("wall").and_then(JsonValue::as_f64).unwrap_or(0.0),
                    seq: item.get("seq").and_then(JsonValue::as_u64).unwrap_or(0),
                    tree: TraceTree { root },
                })
            })
            .collect()
    }

    /// Human-readable rendering for `iq stats --slow`.
    pub fn render_text(&self) -> String {
        render_entries(&self.entries())
    }
}

/// Renders loaded-or-live entries the way `iq stats --slow` prints them.
pub fn render_entries(entries: &[SlowEntry]) -> String {
    if entries.is_empty() {
        return "slow-query log: empty\n".to_string();
    }
    let mut out = format!("slow-query log: {} retained trace(s)\n", entries.len());
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "\n#{} {}  sim {:.4} ms  wall {:.4} ms  (sample {})\n",
            i + 1,
            e.label,
            e.sim * 1e3,
            e.wall * 1e3,
            e.seq
        ));
        for line in e.tree.render_text().lines() {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracetree::TraceBuilder;
    use crate::Phase;

    fn tree(sim: f64) -> TraceTree {
        let mut b = TraceBuilder::new("query", 0.0, 0, 0);
        b.phase_leaf(Phase::Filter, sim, sim / 10.0, 1, 2);
        b.finish(sim, 1, 2)
    }

    #[test]
    fn sampler_takes_one_in_n() {
        let log = SlowLog::new(4, 8);
        let hits: Vec<bool> = (0..12).map(|_| log.should_sample()).collect();
        assert_eq!(hits.iter().filter(|&&h| h).count(), 3);
        assert!(hits[0], "first query is always sampled");
        assert_eq!(log.seen(), 12);
    }

    #[test]
    fn sampler_disabled_at_zero() {
        let log = SlowLog::new(0, 8);
        assert!(!(0..10).any(|_| log.should_sample()));
    }

    #[test]
    fn retains_top_k_slowest_in_order() {
        let log = SlowLog::new(1, 3);
        for sim in [0.5, 2.0, 1.0, 3.0, 0.1, 2.5] {
            log.offer("q", tree(sim));
        }
        let sims: Vec<f64> = log.entries().iter().map(|e| e.sim).collect();
        assert_eq!(sims, vec![3.0, 2.5, 2.0]);
    }

    #[test]
    fn json_round_trips() {
        let log = SlowLog::new(1, 4);
        log.offer("iqtree k=10", tree(1.5));
        log.offer("scan k=1", tree(0.5));
        let doc = log.to_json();
        let back = SlowLog::load_json(&doc).expect("parses");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].label, "iqtree k=10");
        assert_eq!(back[0].sim, 1.5);
        assert_eq!(back[0].tree, log.entries()[0].tree);
    }

    #[test]
    fn render_covers_empty_and_populated() {
        let log = SlowLog::new(1, 2);
        assert!(log.render_text().contains("empty"));
        log.offer("vafile k=5", tree(0.25));
        let text = log.render_text();
        assert!(text.contains("1 retained"));
        assert!(text.contains("vafile k=5"));
        assert!(text.contains("filter"));
    }
}
