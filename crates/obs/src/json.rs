//! Minimal JSON reader for the observability artifacts this crate emits.
//!
//! The registry, slow-query log and telemetry window are persisted as
//! hand-rolled JSON (the workspace is dependency-free by design); reading
//! them back — `iq stats --slow` / `--window` render files written by an
//! earlier process — needs a parser. This one covers exactly the JSON
//! subset those emitters produce plus standard escapes, and rejects
//! anything else with a position-carrying error.

/// A parsed JSON value. Objects keep their key order so round-tripped
/// artifacts stay diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source key order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object fields, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(JsonValue::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not emitted by our writers;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Num(-1500.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().get("d"), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_round_trips() {
        let ugly = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(ugly));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(ugly));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"x"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn preserves_object_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["z", "a"]);
    }
}
