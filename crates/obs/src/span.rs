//! RAII span timing without an external tracing dependency.
//!
//! A [`SpanGuard`] samples `Instant::now()` on entry and records the
//! elapsed wall time into a histogram named `span_<name>_seconds` when it
//! drops. On a disabled registry the guard is empty: entry is one relaxed
//! atomic load and drop does nothing.
//!
//! For hot paths, resolve the [`Histogram`] handle once
//! and use [`SpanGuard::enter_with`]; the `span!` macro is the
//! convenient form for per-query phases, resolving against the global
//! registry by name.

use crate::registry::{Histogram, Registry};
use std::time::Instant;

/// RAII guard that records its lifetime into a histogram on drop.
#[must_use = "dropping the guard immediately records a ~zero-length span"]
pub struct SpanGuard {
    active: Option<(Histogram, Instant)>,
}

impl SpanGuard {
    /// Enters a span named `name` on `registry`. Histogram resolution
    /// (one map lock) only happens when the registry is enabled.
    pub fn enter(registry: &Registry, name: &str) -> SpanGuard {
        if !registry.enabled() {
            return SpanGuard { active: None };
        }
        let hist = registry.histogram(&format!("span_{name}_seconds"));
        SpanGuard {
            active: Some((hist, Instant::now())),
        }
    }

    /// Enters a span on a pre-resolved histogram handle — no name lookup,
    /// suitable for per-page or per-block paths.
    pub fn enter_with(hist: &Histogram) -> SpanGuard {
        if !hist.enabled() {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some((hist.clone(), Instant::now())),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.active.take() {
            hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

/// Opens a wall-time span on the global registry:
/// `let _g = span!("level2_scan");` records into
/// `span_level2_scan_seconds` when the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($crate::global(), $name)
    };
}
