//! Observability layer for the IQ-tree reproduction.
//!
//! Four pieces, all dependency-free so every other crate can use them:
//!
//! - [`Registry`]: lock-cheap named metrics — atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s — with Prometheus-text
//!   and JSON exposition and snapshot diffing. A process-wide instance
//!   lives behind [`global`], disabled by default: every handle guards
//!   its update with one relaxed atomic load, so the disabled path is a
//!   near-no-op.
//! - [`SpanGuard`] / [`span!`]: RAII wall-time spans recorded into
//!   histograms, no external tracing crate.
//! - [`Phase`] / [`PhaseTimes`]: the five k-NN pipeline phases
//!   (directory, plan, filter, refine, top-k) and per-phase
//!   simulated + wall time, which `SimClock` attributes during queries.
//! - [`CostAudit`]: accumulates cost-model predictions vs observed
//!   values and reports relative-error distributions.
//! - [`TraceTree`] / [`TraceBuilder`]: hierarchical span trees recorded
//!   by `SimClock` when tracing is enabled — phase leaves carry exactly
//!   the deltas added to `PhaseTimes`, explicit spans carry
//!   engine/knob/filter annotations and candidate counters. Exports as
//!   pretty text and Chrome trace-event JSON (Perfetto-loadable).
//! - [`SlowLog`]: a 1-in-N sampler plus bounded top-K-slowest retention
//!   of full trace trees, JSON-persistable for `iq stats --slow`.
//! - [`TelemetryWindow`]: a bounded ring of periodic [`Snapshot`]s with
//!   diff-derived counter rates and window-restricted percentiles.
//! - [`json`]: a minimal parser for reading those artifacts back.

pub mod audit;
pub mod histogram;
pub mod json;
pub mod phase;
pub mod registry;
pub mod slowlog;
pub mod span;
pub mod tracetree;
pub mod window;

pub use audit::{AuditSummary, CostAudit, CostPrediction};
pub use histogram::{bucket_bounds, bucket_index, HistogramSnapshot};
pub use json::JsonValue;
pub use phase::{Phase, PhaseTimes, PHASES};
pub use registry::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use slowlog::{SlowEntry, SlowLog};
pub use span::SpanGuard;
pub use tracetree::{TraceBuilder, TraceNode, TraceTree};
pub use window::{TelemetryWindow, WindowReport};
