//! Observability layer for the IQ-tree reproduction.
//!
//! Four pieces, all dependency-free so every other crate can use them:
//!
//! - [`Registry`]: lock-cheap named metrics — atomic [`Counter`]s,
//!   [`Gauge`]s and log-bucketed [`Histogram`]s — with Prometheus-text
//!   and JSON exposition and snapshot diffing. A process-wide instance
//!   lives behind [`global`], disabled by default: every handle guards
//!   its update with one relaxed atomic load, so the disabled path is a
//!   near-no-op.
//! - [`SpanGuard`] / [`span!`]: RAII wall-time spans recorded into
//!   histograms, no external tracing crate.
//! - [`Phase`] / [`PhaseTimes`]: the five k-NN pipeline phases
//!   (directory, plan, filter, refine, top-k) and per-phase
//!   simulated + wall time, which `SimClock` attributes during queries.
//! - [`CostAudit`]: accumulates cost-model predictions vs observed
//!   values and reports relative-error distributions.

pub mod audit;
pub mod histogram;
pub mod phase;
pub mod registry;
pub mod span;

pub use audit::{AuditSummary, CostAudit, CostPrediction};
pub use histogram::{bucket_bounds, bucket_index, HistogramSnapshot};
pub use phase::{Phase, PhaseTimes, PHASES};
pub use registry::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use span::SpanGuard;
