//! Lock-cheap metrics registry: named atomic counters, gauges and
//! log-bucketed histograms with Prometheus-text and JSON exposition.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! cheap to clone; every handle shares the registry's enabled flag, so a
//! disabled registry reduces each metric update to one relaxed atomic
//! load. The name→metric maps are only locked on handle creation and
//! snapshotting, never on the record path.

use crate::histogram::{bucket_bounds, HistogramCore, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

/// State shared between a registry and every handle it has issued.
struct Shared {
    enabled: AtomicBool,
}

/// A registry of named metrics. Create per-test with [`Registry::new`] or
/// use the process-wide [`global`] instance (disabled until something
/// calls [`Registry::set_enabled`]).
pub struct Registry {
    shared: Arc<Shared>,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            shared: Arc::new(Shared {
                enabled: AtomicBool::new(true),
            }),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// A disabled registry: every handle it issues is a near-no-op (one
    /// relaxed load) until [`Registry::set_enabled`] flips it on.
    pub fn disabled() -> Self {
        let r = Registry::new();
        r.set_enabled(false);
        r
    }

    /// Turns recording on or off for every handle ever issued.
    pub fn set_enabled(&self, on: bool) {
        self.shared.enabled.store(on, Relaxed);
    }

    /// Whether handles currently record.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Relaxed)
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            shared: self.shared.clone(),
            value: cell,
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())))
            .clone();
        Gauge {
            shared: self.shared.clone(),
            bits: cell,
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        let core = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCore::new()))
            .clone();
        Histogram {
            shared: self.shared.clone(),
            core,
        }
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }

    /// Renders the registry as a JSON object.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Starts disabled; call
/// `global().set_enabled(true)` (the CLI does this for `--metrics-json`,
/// `iq stats` and `iq bench`) to turn recording on.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::disabled)
}

/// Monotonic counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    shared: Arc<Shared>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. A single relaxed load when the registry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.shared.enabled.load(Relaxed) {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// Gauge handle: a last-write-wins `f64`.
#[derive(Clone)]
pub struct Gauge {
    shared: Arc<Shared>,
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge. A single relaxed load when the registry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if self.shared.enabled.load(Relaxed) {
            self.bits.store(v.to_bits(), Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }
}

/// Histogram handle over the shared log-bucketed storage.
#[derive(Clone)]
pub struct Histogram {
    shared: Arc<Shared>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records a value. A single relaxed load when the registry is disabled.
    #[inline]
    pub fn observe(&self, v: f64) {
        if self.shared.enabled.load(Relaxed) {
            self.core.record(v);
        }
    }

    /// Whether the owning registry currently records.
    pub fn enabled(&self) -> bool {
        self.shared.enabled.load(Relaxed)
    }

    /// Point-in-time copy of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Formats a float so the output is always a valid JSON number.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

/// Rewrites a metric name into the Prometheus charset
/// (`[a-zA-Z0-9_:]`, non-digit first character).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        let ok = ok && !(i == 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    out
}

impl Snapshot {
    /// Metrics recorded since `earlier` was taken: counters and histogram
    /// contents subtract (saturating); gauges keep their latest value.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let prev = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(prev))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let diffed = match earlier.histograms.get(k) {
                    Some(prev) => h.diff(prev),
                    None => h.clone(),
                };
                (k.clone(), diffed)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Prometheus text exposition format: counters and gauges as single
    /// samples, histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", json_f64(*v)));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for &(i, c) in &h.buckets {
                cum += c;
                let (_, hi) = bucket_bounds(i);
                if hi.is_finite() {
                    out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", json_f64(hi)));
                }
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n", json_f64(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.count));
            // Bucket-range clips, so a clamped p99 is visible instead of
            // silently plausible.
            out.push_str(&format!(
                "# TYPE {n}_clipped_total counter\n\
                 {n}_clipped_total{{side=\"underflow\"}} {}\n\
                 {n}_clipped_total{{side=\"overflow\"}} {}\n",
                h.underflow, h.overflow
            ));
        }
        out
    }

    /// Hand-rolled JSON rendering (the workspace carries no serde):
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name:
    /// {count, sum, mean, p50, p90, p99, underflow, overflow,
    /// buckets: [{le, count}...]}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{k}\": {v}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!("{sep}\n    \"{k}\": {}", json_f64(*v)));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            out.push_str(&format!(
                "{sep}\n    \"{k}\": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"underflow\": {}, \"overflow\": {}, \"buckets\": [",
                h.count,
                json_f64(h.sum),
                json_f64(h.mean()),
                json_f64(h.quantile(0.50)),
                json_f64(h.quantile(0.90)),
                json_f64(h.quantile(0.99)),
                h.underflow,
                h.overflow,
            ));
            for (j, &(b, c)) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let (_, hi) = bucket_bounds(b);
                let le = if hi.is_finite() {
                    json_f64(hi)
                } else {
                    "\"+Inf\"".to_string()
                };
                out.push_str(&format!("{sep}{{\"le\": {le}, \"count\": {c}}}"));
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}
