//! Log-bucketed histogram with lock-free recording.
//!
//! Buckets are derived straight from the IEEE-754 bit pattern of the
//! recorded value: the unbiased exponent selects an octave and the top
//! `SUB_BITS` mantissa bits split each octave into `SUBS` sub-buckets,
//! so bucket resolution is a constant factor of `2^(1/SUBS) ≈ 1.19` with
//! no floating-point math on the record path. Values outside
//! `[2^MIN_EXP, 2^MAX_EXP)` (including zero and negatives) clamp into the
//! underflow/overflow buckets.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Mantissa bits used to subdivide each octave.
const SUB_BITS: u32 = 2;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUBS: usize = 1 << SUB_BITS;
/// Smallest representable octave: values below `2^MIN_EXP` underflow.
/// `2^-40 ≈ 9.1e-13`, comfortably below a nanosecond in seconds.
const MIN_EXP: i32 = -40;
/// Largest representable octave: values at or above `2^MAX_EXP` overflow.
/// `2^40 ≈ 1.1e12`, comfortably above any byte size or second count here.
const MAX_EXP: i32 = 40;
/// Total bucket count: regular buckets plus underflow (index 0) and
/// overflow (last index).
pub(crate) const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBS + 2;

/// Maps a value to its bucket index using only integer bit operations.
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7FF) as i32;
    if biased == 0 {
        return 0; // subnormal: far below MIN_EXP
    }
    let exp = biased - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp >= MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Index of the overflow bucket.
pub(crate) fn last_bucket_index() -> usize {
    BUCKETS - 1
}

/// Lower/upper value bounds of a bucket. The underflow bucket spans
/// `[0, 2^MIN_EXP)`; the overflow bucket spans `[2^MAX_EXP, +inf)`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == 0 {
        return (0.0, (2f64).powi(MIN_EXP));
    }
    if index >= BUCKETS - 1 {
        return ((2f64).powi(MAX_EXP), f64::INFINITY);
    }
    let j = index - 1;
    let octave = MIN_EXP + (j / SUBS) as i32;
    let sub = (j % SUBS) as f64;
    let base = (2f64).powi(octave);
    let lo = base * (1.0 + sub / SUBS as f64);
    let hi = base * (1.0 + (sub + 1.0) / SUBS as f64);
    (lo, hi)
}

/// Shared histogram storage: one atomic slot per bucket plus running
/// count and sum. Recording is wait-free apart from the sum's CAS loop.
pub(crate) struct HistogramCore {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of recorded values, stored as `f64` bits and updated by CAS.
    sum_bits: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    pub(crate) fn record(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        let mut cur = self.sum_bits.load(Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .sum_bits
                .compare_exchange_weak(cur, next, Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<(usize, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Relaxed);
                (c != 0).then_some((i, c))
            })
            .collect();
        let clipped = |idx: usize| {
            buckets
                .iter()
                .find(|&&(i, _)| i == idx)
                .map_or(0, |&(_, c)| c)
        };
        HistogramSnapshot {
            count: self.count.load(Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Relaxed)),
            underflow: clipped(0),
            overflow: clipped(BUCKETS - 1),
            buckets,
        }
    }
}

/// Point-in-time copy of a histogram: total count, value sum, and the
/// non-empty `(bucket index, count)` pairs in index order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Values clipped into the underflow bucket (zero, negative, NaN or
    /// below `2^MIN_EXP`). A nonzero count means low quantiles report
    /// a flat 0 rather than a real value.
    pub underflow: u64,
    /// Values clipped into the overflow bucket (at or above
    /// `2^MAX_EXP`). A nonzero count means high quantiles (the p99 a
    /// dashboard alerts on) are clamped to the bucket floor.
    pub overflow: u64,
    /// Non-empty buckets as `(bucket_index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate: the value representative of the
    /// bucket holding the `ceil(q·count)`-th recorded value (1-based).
    /// Regular buckets answer with their geometric midpoint, so the
    /// estimate is always within one bucket of the true value under the
    /// same rank convention. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            cum += c;
            if cum >= target {
                let (lo, hi) = bucket_bounds(i);
                return if i == 0 {
                    0.0
                } else if hi.is_infinite() {
                    lo
                } else {
                    (lo * hi).sqrt()
                };
            }
        }
        0.0
    }

    /// Counts recorded since `earlier` was taken: bucket-wise and total
    /// saturating subtraction. `earlier` must be an older snapshot of the
    /// same histogram for the result to be meaningful.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut old: Vec<(usize, u64)> = earlier.buckets.clone();
        let buckets = self
            .buckets
            .iter()
            .filter_map(|&(i, c)| {
                let prev = old
                    .iter_mut()
                    .find(|(j, _)| *j == i)
                    .map_or(0, |(_, p)| std::mem::take(p));
                let d = c.saturating_sub(prev);
                (d != 0).then_some((i, d))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum - earlier.sum,
            underflow: self.underflow.saturating_sub(earlier.underflow),
            overflow: self.overflow.saturating_sub(earlier.overflow),
            buckets,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_range() {
        // Every regular bucket's upper bound is the next bucket's lower bound.
        for i in 0..BUCKETS - 1 {
            let (_, hi) = bucket_bounds(i);
            let (lo_next, _) = bucket_bounds(i + 1);
            assert!(
                (hi - lo_next).abs() <= hi * 1e-12,
                "gap between buckets {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn values_land_in_their_bounds() {
        for v in [1e-9, 0.5, 1.0, 1.5, 2.0, 3.7, 1024.0, 1e9] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} not in [{lo}, {hi}) (bucket {i})");
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e300), BUCKETS - 1);
    }

    #[test]
    fn snapshot_counts_clips_honestly() {
        let core = HistogramCore::new();
        for v in [1.0, 2.0, 0.5] {
            core.record(v);
        }
        assert_eq!(core.snapshot().underflow, 0);
        assert_eq!(core.snapshot().overflow, 0);
        core.record(0.0); // clamps low
        core.record(-3.0); // clamps low
        core.record(1e300); // clamps high
        let snap = core.snapshot();
        assert_eq!(snap.underflow, 2);
        assert_eq!(snap.overflow, 1);
        assert_eq!(snap.count, 6);
        // The clipped p-max is the overflow bucket floor — visible as a
        // clip, not silently plausible.
        assert_eq!(snap.quantile(1.0), bucket_bounds(BUCKETS - 1).0);
    }

    #[test]
    fn diff_subtracts_clip_counts() {
        let core = HistogramCore::new();
        core.record(-1.0);
        let earlier = core.snapshot();
        core.record(-2.0);
        core.record(1e301);
        let d = core.snapshot().diff(&earlier);
        assert_eq!(d.underflow, 1);
        assert_eq!(d.overflow, 1);
        assert_eq!(d.count, 2);
    }
}
