//! Windowed telemetry: a bounded ring of periodic registry [`Snapshot`]s
//! with [`Snapshot::diff`]-derived rates and window-restricted histogram
//! percentiles.
//!
//! A scrape endpoint (or `iq stats --window <n>`) wants "what happened
//! over the last n intervals", not lifetime totals. Drivers push a
//! timestamped snapshot per interval; [`TelemetryWindow::report`] then
//! diffs the window's endpoints, turning counters into per-second rates
//! and histograms into percentiles of only the values recorded inside
//! the window. Persists to JSON so a later process can render it.

use crate::json::{parse, JsonValue};
use crate::registry::{json_f64, Snapshot};
use crate::HistogramSnapshot;
use std::collections::{BTreeMap, VecDeque};

/// Bounded ring of `(timestamp_seconds, Snapshot)` samples.
#[derive(Clone, Debug, Default)]
pub struct TelemetryWindow {
    cap: usize,
    ring: VecDeque<(f64, Snapshot)>,
}

/// Rates and percentiles over one window.
#[derive(Clone, Debug, Default)]
pub struct WindowReport {
    /// Seconds between the window's first and last snapshot.
    pub span_seconds: f64,
    /// Snapshots in the window (including both endpoints).
    pub samples: usize,
    /// Counter deltas over the window.
    pub deltas: BTreeMap<String, u64>,
    /// Counter rates (delta / span) per second; zero-delta counters are
    /// omitted.
    pub rates: BTreeMap<String, f64>,
    /// Latest gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Window-restricted histograms (only values recorded inside the
    /// window); empty ones are omitted.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl TelemetryWindow {
    /// A ring retaining at most `cap` snapshots.
    pub fn new(cap: usize) -> Self {
        TelemetryWindow {
            cap: cap.max(2),
            ring: VecDeque::new(),
        }
    }

    /// Appends a snapshot taken at `t` seconds (any monotone-enough
    /// clock: unix time, a run-relative timer, ...). Evicts the oldest
    /// sample when full.
    pub fn push(&mut self, t: f64, snap: Snapshot) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
        }
        self.ring.push_back((t, snap));
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Rates/percentiles over the last `n` intervals (so over `n + 1`
    /// snapshots, clamped to what the ring holds). Needs at least two
    /// snapshots.
    pub fn report(&self, n: usize) -> Option<WindowReport> {
        if self.ring.len() < 2 {
            return None;
        }
        let last = self.ring.len() - 1;
        let first = last.saturating_sub(n.max(1));
        let (t0, s0) = &self.ring[first];
        let (t1, s1) = &self.ring[last];
        let span = (t1 - t0).max(0.0);
        let d = s1.diff(s0);
        let rates = d
            .counters
            .iter()
            .filter(|(_, &v)| v > 0)
            .map(|(k, &v)| (k.clone(), v as f64 / span.max(1e-9)))
            .collect();
        let deltas = d.counters.into_iter().filter(|&(_, v)| v > 0).collect();
        let histograms = d
            .histograms
            .into_iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        Some(WindowReport {
            span_seconds: span,
            samples: last - first + 1,
            deltas,
            rates,
            gauges: d.gauges,
            histograms,
        })
    }

    /// Serializes the ring as a JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"telemetry_window\": [\n");
        for (i, (t, snap)) in self.ring.iter().enumerate() {
            let sep = if i + 1 == self.ring.len() { "" } else { "," };
            let body = snap.to_json();
            out.push_str(&format!(
                "    {{\"t\": {}, \"snapshot\": {}}}{sep}\n",
                json_f64(*t),
                body.trim_end()
            ));
        }
        out.push_str(&format!("  ],\n  \"cap\": {}\n}}\n", self.cap));
        out
    }

    /// Rebuilds a window from its [`TelemetryWindow::to_json`] form.
    pub fn load_json(doc: &str) -> Result<TelemetryWindow, String> {
        let v = parse(doc)?;
        let cap = v
            .get("cap")
            .and_then(JsonValue::as_u64)
            .unwrap_or(16)
            .max(2) as usize;
        let items = v
            .get("telemetry_window")
            .and_then(JsonValue::as_arr)
            .ok_or("missing telemetry_window array")?;
        let mut w = TelemetryWindow::new(cap);
        for item in items {
            let t = item
                .get("t")
                .and_then(JsonValue::as_f64)
                .ok_or("sample missing t")?;
            let snap = snapshot_from_json(item.get("snapshot").ok_or("sample missing snapshot")?)?;
            w.push(t, snap);
        }
        Ok(w)
    }
}

/// Parses a registry snapshot from its `Snapshot::to_json` form. Bucket
/// counts are recovered from the cumulative-free `{le, count}` pairs by
/// mapping each `le` back to its bucket index.
pub fn snapshot_from_json(v: &JsonValue) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    if let Some(fields) = v.get("counters").and_then(JsonValue::as_obj) {
        for (k, val) in fields {
            snap.counters
                .insert(k.clone(), val.as_u64().ok_or("bad counter value")?);
        }
    }
    if let Some(fields) = v.get("gauges").and_then(JsonValue::as_obj) {
        for (k, val) in fields {
            snap.gauges
                .insert(k.clone(), val.as_f64().ok_or("bad gauge value")?);
        }
    }
    if let Some(fields) = v.get("histograms").and_then(JsonValue::as_obj) {
        for (k, h) in fields {
            let mut hist = HistogramSnapshot {
                count: h.get("count").and_then(JsonValue::as_u64).unwrap_or(0),
                sum: h.get("sum").and_then(JsonValue::as_f64).unwrap_or(0.0),
                underflow: h.get("underflow").and_then(JsonValue::as_u64).unwrap_or(0),
                overflow: h.get("overflow").and_then(JsonValue::as_u64).unwrap_or(0),
                buckets: Vec::new(),
            };
            if let Some(buckets) = h.get("buckets").and_then(JsonValue::as_arr) {
                for b in buckets {
                    let c = b.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
                    let idx = match b.get("le") {
                        // The overflow bucket serializes le as "+Inf".
                        Some(JsonValue::Str(_)) => crate::histogram::last_bucket_index(),
                        Some(le) => {
                            let hi = le.as_f64().ok_or("bad bucket le")?;
                            // `le` is the bucket's exclusive upper bound;
                            // any value just below it maps back to the
                            // bucket itself.
                            crate::histogram::bucket_index(hi * (1.0 - 1e-12))
                        }
                        None => return Err("bucket missing le".into()),
                    };
                    if c > 0 {
                        snapshot_bucket_push(&mut hist.buckets, idx, c);
                    }
                }
            }
            snap.histograms.insert(k.clone(), hist);
        }
    }
    Ok(snap)
}

/// Inserts keeping ascending index order, merging duplicates.
fn snapshot_bucket_push(buckets: &mut Vec<(usize, u64)>, idx: usize, c: u64) {
    match buckets.binary_search_by_key(&idx, |&(i, _)| i) {
        Ok(pos) => buckets[pos].1 += c,
        Err(pos) => buckets.insert(pos, (idx, c)),
    }
}

/// Renders a report the way `iq stats --window <n>` prints it.
pub fn render_report(r: &WindowReport) -> String {
    let mut out = format!(
        "window: {} sample(s) spanning {:.3} s\n",
        r.samples, r.span_seconds
    );
    if r.rates.is_empty() {
        out.push_str("  no counter activity in the window\n");
    } else {
        out.push_str("  rates:\n");
        for (k, rate) in &r.rates {
            out.push_str(&format!(
                "    {k:<44} {rate:>12.1}/s  (+{})\n",
                r.deltas.get(k).copied().unwrap_or(0)
            ));
        }
    }
    if !r.histograms.is_empty() {
        out.push_str("  window percentiles:\n");
        for (k, h) in &r.histograms {
            out.push_str(&format!(
                "    {k:<44} p50 {:.3e}  p90 {:.3e}  p99 {:.3e}  (n={})\n",
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.count
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap_at(ops: u64, reg: &Registry) -> Snapshot {
        let c = reg.counter("ops_total");
        while c.get() < ops {
            c.inc();
        }
        reg.histogram("lat_seconds").observe(0.001 * ops as f64);
        reg.snapshot()
    }

    #[test]
    fn report_derives_rates_from_diffs() {
        let reg = Registry::new();
        let mut w = TelemetryWindow::new(8);
        w.push(0.0, snap_at(10, &reg));
        w.push(2.0, snap_at(30, &reg));
        w.push(4.0, snap_at(90, &reg));
        let r = w.report(1).expect("two samples");
        assert_eq!(r.samples, 2);
        assert_eq!(r.deltas["ops_total"], 60);
        assert!((r.rates["ops_total"] - 30.0).abs() < 1e-9);
        let wide = w.report(10).expect("clamped to ring");
        assert_eq!(wide.deltas["ops_total"], 80);
        assert!((wide.rates["ops_total"] - 20.0).abs() < 1e-9);
        assert_eq!(wide.histograms["lat_seconds"].count, 2);
    }

    #[test]
    fn ring_is_bounded() {
        let mut w = TelemetryWindow::new(3);
        for i in 0..10 {
            w.push(i as f64, Snapshot::default());
        }
        assert_eq!(w.len(), 3);
        let r = w.report(99).expect("report");
        assert_eq!(r.samples, 3);
        assert!((r.span_seconds - 2.0).abs() < 1e-9);
    }

    #[test]
    fn needs_two_samples() {
        let mut w = TelemetryWindow::new(4);
        assert!(w.report(1).is_none());
        w.push(0.0, Snapshot::default());
        assert!(w.report(1).is_none());
    }

    #[test]
    fn json_round_trips_with_histograms() {
        let reg = Registry::new();
        let mut w = TelemetryWindow::new(4);
        w.push(1.0, snap_at(5, &reg));
        w.push(2.5, snap_at(25, &reg));
        let doc = w.to_json();
        let back = TelemetryWindow::load_json(&doc).expect("parses");
        assert_eq!(back.len(), 2);
        let r0 = w.report(1).unwrap();
        let r1 = back.report(1).unwrap();
        assert_eq!(r0.deltas, r1.deltas);
        assert_eq!(r0.gauges, r1.gauges);
        // Histogram counts survive; bucket indices map back exactly.
        assert_eq!(
            r0.histograms["lat_seconds"].buckets,
            r1.histograms["lat_seconds"].buckets
        );
    }

    #[test]
    fn render_mentions_rates_and_percentiles() {
        let reg = Registry::new();
        let mut w = TelemetryWindow::new(4);
        w.push(0.0, snap_at(1, &reg));
        w.push(1.0, snap_at(11, &reg));
        let text = render_report(&w.report(1).unwrap());
        assert!(text.contains("ops_total"));
        assert!(text.contains("/s"));
        assert!(text.contains("p99"));
    }
}
