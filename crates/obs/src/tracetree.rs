//! Hierarchical query traces: a span tree recorded alongside the flat
//! [`PhaseTimes`](crate::PhaseTimes) accounting.
//!
//! The flat per-phase totals (PR 5) say *how much* time a query spent
//! filtering; the tree says *where* — which engine, under which knobs,
//! across how many page visits, with how much I/O per span. `SimClock`
//! owns a [`TraceBuilder`] when tracing is enabled and feeds it the same
//! simulated/wall deltas it adds to `PhaseTimes`, so the tree's phase
//! leaves sum to the flat totals exactly (same additions, same order).
//!
//! Consecutive leaves of the same phase under one parent coalesce into a
//! single node with a `merged` segment count: a 1 000-page filter sweep
//! is one `filter ×1000` node, not a thousand siblings, which keeps
//! retained slow-query trees small without losing any time.

use crate::json::{escape, JsonValue};
use crate::phase::Phase;
use crate::registry::json_f64;
use std::time::Instant;

/// One span in the tree. Leaf spans produced by phase accounting carry
/// their [`Phase`]; explicit spans (engine roots, batch chunks,
/// per-query attribution) carry annotations and counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceNode {
    /// Span name (engine name, phase name, `q3`, ...).
    pub name: String,
    /// The pipeline phase, for leaves recorded by phase accounting.
    pub phase: Option<Phase>,
    /// Simulated seconds spent in this span (inclusive of children).
    pub sim: f64,
    /// Wall-clock seconds spent in this span (inclusive of children).
    pub wall: f64,
    /// Number of coalesced same-phase segments folded into this node.
    pub merged: u64,
    /// Disk seeks issued while the span was open.
    pub seeks: u64,
    /// Blocks read while the span was open.
    pub blocks_read: u64,
    /// Engine/knob/filter annotations, in recording order.
    pub attrs: Vec<(String, String)>,
    /// Candidate/page counters, in recording order.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in recording order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    fn leaf(phase: Phase, sim: f64, wall: f64, seeks: u64, blocks_read: u64) -> Self {
        TraceNode {
            name: phase.name().to_string(),
            phase: Some(phase),
            sim,
            wall,
            merged: 1,
            seeks,
            blocks_read,
            ..TraceNode::default()
        }
    }

    /// Sums the phase-leaf times in this subtree into `sim`/`wall`
    /// accumulators indexed by [`Phase`].
    fn accumulate_phases(&self, sim: &mut [f64; 5], wall: &mut [f64; 5]) {
        if let Some(p) = self.phase {
            sim[p as usize] += self.sim;
            wall[p as usize] += self.wall;
        }
        for c in &self.children {
            c.accumulate_phases(sim, wall);
        }
    }

    /// Number of nodes in this subtree (including self).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceNode::node_count)
            .sum::<usize>()
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        if self.merged > 1 {
            out.push_str(&format!(" x{}", self.merged));
        }
        out.push_str(&format!(
            "  sim {:.4} ms  wall {:.4} ms",
            self.sim * 1e3,
            self.wall * 1e3
        ));
        if self.seeks > 0 || self.blocks_read > 0 {
            out.push_str(&format!(
                "  io {} seek(s) {} block(s)",
                self.seeks, self.blocks_read
            ));
        }
        if !self.attrs.is_empty() {
            out.push_str("  [");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push(']');
        }
        if !self.counters.is_empty() {
            out.push_str("  {");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push('}');
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// Serializes this subtree as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.json_into(&mut out);
        out
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"sim\": {}, \"wall\": {}",
            escape(&self.name),
            json_f64(self.sim),
            json_f64(self.wall)
        ));
        if let Some(p) = self.phase {
            out.push_str(&format!(", \"phase\": \"{}\"", p.name()));
        }
        if self.merged > 1 {
            out.push_str(&format!(", \"merged\": {}", self.merged));
        }
        if self.seeks > 0 {
            out.push_str(&format!(", \"seeks\": {}", self.seeks));
        }
        if self.blocks_read > 0 {
            out.push_str(&format!(", \"blocks_read\": {}", self.blocks_read));
        }
        if !self.attrs.is_empty() {
            out.push_str(", \"attrs\": {");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                out.push_str(&format!("{sep}\"{}\": \"{}\"", escape(k), escape(v)));
            }
            out.push('}');
        }
        if !self.counters.is_empty() {
            out.push_str(", \"counters\": {");
            for (i, (k, v)) in self.counters.iter().enumerate() {
                let sep = if i == 0 { "" } else { ", " };
                out.push_str(&format!("{sep}\"{}\": {v}", escape(k)));
            }
            out.push('}');
        }
        if !self.children.is_empty() {
            out.push_str(", \"children\": [");
            for (i, c) in self.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                c.json_into(out);
            }
            out.push(']');
        }
        out.push('}');
    }

    /// Rebuilds a node from its [`TraceNode::to_json`] form.
    pub fn from_json(v: &JsonValue) -> Result<TraceNode, String> {
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("trace node missing name")?
            .to_string();
        let phase = match v.get("phase").and_then(JsonValue::as_str) {
            None => None,
            Some(p) => Some(
                crate::phase::PHASES
                    .iter()
                    .copied()
                    .find(|ph| ph.name() == p)
                    .ok_or_else(|| format!("unknown phase `{p}`"))?,
            ),
        };
        let num = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
        let int = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let attrs = v
            .get("attrs")
            .and_then(JsonValue::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                    .collect()
            })
            .unwrap_or_default();
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .map(|fields| {
                fields
                    .iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                    .collect()
            })
            .unwrap_or_default();
        let children = v
            .get("children")
            .and_then(JsonValue::as_arr)
            .map(|items| items.iter().map(TraceNode::from_json).collect())
            .transpose()?
            .unwrap_or_default();
        Ok(TraceNode {
            name,
            phase,
            sim: num("sim"),
            wall: num("wall"),
            merged: int("merged").max(1),
            seeks: int("seeks"),
            blocks_read: int("blocks_read"),
            attrs,
            counters,
            children,
        })
    }
}

/// A completed query trace: the root span plus everything under it.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceTree {
    /// The root span (normally named after the driver, with one engine
    /// span beneath it).
    pub root: TraceNode,
}

impl TraceTree {
    /// Per-phase simulated/wall sums over every phase leaf in the tree,
    /// indexed by `Phase as usize`. When every clock charge happened
    /// inside a phase, these equal the flat `PhaseTimes` totals exactly.
    pub fn phase_totals(&self) -> ([f64; 5], [f64; 5]) {
        let mut sim = [0.0; 5];
        let mut wall = [0.0; 5];
        self.root.accumulate_phases(&mut sim, &mut wall);
        (sim, wall)
    }

    /// Total simulated seconds across all phase leaves.
    pub fn total_sim(&self) -> f64 {
        self.phase_totals().0.iter().sum()
    }

    /// Total wall seconds across all phase leaves.
    pub fn total_wall(&self) -> f64 {
        self.phase_totals().1.iter().sum()
    }

    /// Indented text rendering for `iq query --trace-tree`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, 0);
        out
    }

    /// Chrome trace-event JSON (the `chrome://tracing` / Perfetto
    /// format): one complete (`"ph": "X"`) event per span, timestamps in
    /// microseconds of *simulated* time laid out depth-first — children
    /// run back-to-back inside their parent, so the nesting renders as
    /// stacked slices on one track.
    pub fn to_chrome_json(&self) -> String {
        let mut events = String::new();
        let mut first = true;
        emit_chrome(&self.root, 0.0, &mut events, &mut first);
        format!("{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n{events}\n]}}\n")
    }
}

/// Emits `node` starting at `ts` microseconds and returns its duration
/// in microseconds (at least the sum of its children).
fn emit_chrome(node: &TraceNode, ts: f64, events: &mut String, first: &mut bool) -> f64 {
    let mut child_ts = ts;
    let mut args = String::new();
    let push_arg = |s: String, args: &mut String| {
        if !args.is_empty() {
            args.push_str(", ");
        }
        args.push_str(&s);
    };
    for (k, v) in &node.attrs {
        push_arg(format!("\"{}\": \"{}\"", escape(k), escape(v)), &mut args);
    }
    for (k, v) in &node.counters {
        push_arg(format!("\"{}\": {v}", escape(k)), &mut args);
    }
    if node.merged > 1 {
        push_arg(format!("\"merged\": {}", node.merged), &mut args);
    }
    if node.seeks > 0 {
        push_arg(format!("\"seeks\": {}", node.seeks), &mut args);
    }
    if node.blocks_read > 0 {
        push_arg(format!("\"blocks_read\": {}", node.blocks_read), &mut args);
    }
    push_arg(
        format!("\"wall_ms\": {}", json_f64(node.wall * 1e3)),
        &mut args,
    );
    // Reserve this event's slot before the children so parents precede
    // children in the file; the duration is patched in afterwards via a
    // second pass... instead, compute children first into a scratch.
    let mut child_events = String::new();
    let mut child_first = true;
    for c in &node.children {
        child_ts += emit_chrome(c, child_ts, &mut child_events, &mut child_first);
    }
    let dur = (node.sim * 1e6).max(child_ts - ts);
    if !*first {
        events.push_str(",\n");
    }
    *first = false;
    events.push_str(&format!(
        "{{\"name\": \"{}\", \"cat\": \"query\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
         \"pid\": 1, \"tid\": 1, \"args\": {{{args}}}}}",
        escape(&node.name),
        json_f64(ts),
        json_f64(dur)
    ));
    if !child_events.is_empty() {
        events.push_str(",\n");
        events.push_str(&child_events);
    }
    dur
}

/// An open span: the node under construction plus the clock readings
/// taken when it was opened.
#[derive(Clone, Debug)]
struct Frame {
    node: TraceNode,
    sim0: f64,
    wall0: Instant,
    seeks0: u64,
    blocks0: u64,
}

/// Records a [`TraceTree`] incrementally. `SimClock` owns one of these
/// when tracing is enabled and feeds it clock readings; nothing here
/// reads time on its own (wall instants excepted), so the builder stays
/// consistent with whatever clock drives it.
#[derive(Clone, Debug)]
pub struct TraceBuilder {
    /// Open spans, root first. Never empty.
    stack: Vec<Frame>,
}

impl TraceBuilder {
    /// Starts a trace whose root span opens at the given clock readings.
    pub fn new(name: &str, sim_now: f64, seeks: u64, blocks: u64) -> Self {
        TraceBuilder {
            stack: vec![Frame {
                node: TraceNode {
                    name: name.to_string(),
                    ..TraceNode::default()
                },
                sim0: sim_now,
                wall0: Instant::now(),
                seeks0: seeks,
                blocks0: blocks,
            }],
        }
    }

    /// Opens a child span of the innermost open span.
    pub fn span_begin(&mut self, name: &str, sim_now: f64, seeks: u64, blocks: u64) {
        self.stack.push(Frame {
            node: TraceNode {
                name: name.to_string(),
                ..TraceNode::default()
            },
            sim0: sim_now,
            wall0: Instant::now(),
            seeks0: seeks,
            blocks0: blocks,
        });
    }

    /// Closes the innermost open span (the root never closes this way).
    pub fn span_end(&mut self, sim_now: f64, seeks: u64, blocks: u64) {
        if self.stack.len() < 2 {
            return;
        }
        let f = self.stack.pop().expect("checked non-empty");
        let node = close_frame(f, sim_now, seeks, blocks);
        self.stack
            .last_mut()
            .expect("root remains")
            .node
            .children
            .push(node);
    }

    /// Annotates the innermost open span.
    pub fn attr(&mut self, key: &str, value: &str) {
        let node = &mut self.stack.last_mut().expect("never empty").node;
        node.attrs.push((key.to_string(), value.to_string()));
    }

    /// Adds `n` to a counter on the innermost open span.
    pub fn count(&mut self, key: &str, n: u64) {
        let node = &mut self.stack.last_mut().expect("never empty").node;
        if let Some((_, v)) = node.counters.iter_mut().find(|(k, _)| k == key) {
            *v += n;
        } else {
            node.counters.push((key.to_string(), n));
        }
    }

    /// Records one closed phase segment with externally computed deltas
    /// (the same values `SimClock` adds to its `PhaseTimes`). A segment
    /// coalesces into the previous child when that child is a leaf of
    /// the same phase.
    pub fn phase_leaf(&mut self, phase: Phase, sim: f64, wall: f64, seeks: u64, blocks: u64) {
        let parent = &mut self.stack.last_mut().expect("never empty").node;
        if let Some(last) = parent.children.last_mut() {
            if last.phase == Some(phase) && last.children.is_empty() {
                last.sim += sim;
                last.wall += wall;
                last.merged += 1;
                last.seeks += seeks;
                last.blocks_read += blocks;
                return;
            }
        }
        parent
            .children
            .push(TraceNode::leaf(phase, sim, wall, seeks, blocks));
    }

    /// Attaches an already-built subtree (a batch chunk's trace, a
    /// per-query attribution node) under the innermost open span.
    pub fn add_child_tree(&mut self, node: TraceNode) {
        self.stack
            .last_mut()
            .expect("never empty")
            .node
            .children
            .push(node);
    }

    /// Closes every open span at the given clock readings and returns
    /// the finished tree.
    pub fn finish(mut self, sim_now: f64, seeks: u64, blocks: u64) -> TraceTree {
        while self.stack.len() > 1 {
            self.span_end(sim_now, seeks, blocks);
        }
        let root = close_frame(self.stack.pop().expect("root"), sim_now, seeks, blocks);
        TraceTree { root }
    }

    /// A copy of the tree as it stands, open spans closed at the given
    /// readings (used when one clock absorbs another mid-flight).
    pub fn snapshot_tree(&self, sim_now: f64, seeks: u64, blocks: u64) -> TraceTree {
        self.clone().finish(sim_now, seeks, blocks)
    }
}

fn close_frame(f: Frame, sim_now: f64, seeks: u64, blocks: u64) -> TraceNode {
    let mut node = f.node;
    node.sim = sim_now - f.sim0;
    node.wall = f.wall0.elapsed().as_secs_f64();
    node.merged = node.merged.max(1);
    node.seeks = seeks.saturating_sub(f.seeks0);
    node.blocks_read = blocks.saturating_sub(f.blocks0);
    node
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_tree() -> TraceTree {
        let mut b = TraceBuilder::new("query", 0.0, 0, 0);
        b.span_begin("iqtree", 0.0, 0, 0);
        b.attr("k", "10");
        b.phase_leaf(Phase::Directory, 0.5, 0.001, 2, 2);
        b.phase_leaf(Phase::Filter, 1.0, 0.002, 1, 4);
        b.phase_leaf(Phase::Filter, 0.25, 0.001, 1, 4);
        b.phase_leaf(Phase::Refine, 0.125, 0.0005, 3, 3);
        b.count("pages_processed", 2);
        b.span_end(1.875, 7, 13);
        b.finish(1.875, 7, 13)
    }

    #[test]
    fn phase_leaves_coalesce_and_sum_exactly() {
        let t = sample_tree();
        let engine = &t.root.children[0];
        // directory, filter (x2 merged), refine
        assert_eq!(engine.children.len(), 3);
        assert_eq!(engine.children[1].merged, 2);
        assert_eq!(engine.children[1].sim, 1.25);
        assert_eq!(engine.children[1].blocks_read, 8);
        let (sim, _) = t.phase_totals();
        assert_eq!(sim[Phase::Directory as usize], 0.5);
        assert_eq!(sim[Phase::Filter as usize], 1.25);
        assert_eq!(t.total_sim(), 1.875);
        assert_eq!(t.root.sim, 1.875);
        assert_eq!(t.root.seeks, 7);
    }

    #[test]
    fn render_text_shows_structure() {
        let text = sample_tree().render_text();
        assert!(text.contains("query"));
        assert!(text.contains("  iqtree"));
        assert!(text.contains("    filter x2"));
        assert!(text.contains("[k=10]"));
        assert!(text.contains("pages_processed=2"));
    }

    #[test]
    fn chrome_json_is_valid_and_nested() {
        let doc = sample_tree().to_chrome_json();
        let v = parse(&doc).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 5); // query, iqtree, 3 phase groups
        for e in events {
            assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
            assert!(e.get("ts").unwrap().as_f64().is_some());
            assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
            assert!(e.get("name").unwrap().as_str().is_some());
        }
        // The root's duration covers the engine span's.
        let root_dur = events[0].get("dur").unwrap().as_f64().unwrap();
        let child_dur = events[1].get("dur").unwrap().as_f64().unwrap();
        assert!(root_dur >= child_dur);
    }

    #[test]
    fn node_json_round_trips() {
        let t = sample_tree();
        let doc = t.root.to_json();
        let v = parse(&doc).expect("valid JSON");
        let back = TraceNode::from_json(&v).expect("decodes");
        assert_eq!(back, t.root);
    }

    #[test]
    fn unbalanced_spans_close_on_finish() {
        let mut b = TraceBuilder::new("root", 0.0, 0, 0);
        b.span_begin("open1", 0.0, 0, 0);
        b.span_begin("open2", 1.0, 0, 0);
        let t = b.finish(3.0, 0, 0);
        assert_eq!(t.root.children[0].name, "open1");
        assert_eq!(t.root.children[0].children[0].name, "open2");
        assert_eq!(t.root.sim, 3.0);
        assert_eq!(t.root.children[0].children[0].sim, 2.0);
    }

    #[test]
    fn span_end_on_root_is_a_no_op() {
        let mut b = TraceBuilder::new("root", 0.0, 0, 0);
        b.span_end(1.0, 0, 0);
        let t = b.finish(2.0, 0, 0);
        assert!(t.root.children.is_empty());
    }
}
