//! Cost-model auditing: predicted vs observed, as distributions.
//!
//! The paper's cost model (Sections 2.3, 3.4–3.6) predicts page accesses
//! and seek+transfer time per query. [`CostAudit`] accumulates
//! `(predicted, observed)` pairs per named quantity and summarises the
//! signed relative-error distribution, turning the model from asserted to
//! audited. It deliberately takes plain numbers so this crate depends on
//! neither `iq-costmodel` nor `iq-engine`; the glue that produces
//! predictions lives next to each access method.

use std::collections::BTreeMap;

/// A cost-model prediction for one query, produced by an access method
/// before the query runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostPrediction {
    /// Expected page accesses spent finding and filtering candidates
    /// (approximation sweeps, quantized-page decodes) — the quantity
    /// comparable to an observed `QueryTrace::pages_processed`.
    pub pages: f64,
    /// Expected seek + transfer time, simulated seconds, all phases
    /// together (directory, filter and refinement).
    pub io_seconds: f64,
    /// Alias of [`CostPrediction::pages`] in the phase breakdown, so
    /// `filter_pages + refine_pages` is the total predicted access count.
    pub filter_pages: f64,
    /// Expected exact-representation refinement reads (random accesses
    /// into the exact level) — comparable to `QueryTrace::refinements`.
    pub refine_pages: f64,
}

/// One audited quantity's accumulated pairs.
#[derive(Clone, Debug, Default)]
struct Series {
    rel_errs: Vec<f64>,
    pred_sum: f64,
    obs_sum: f64,
}

/// Accumulates predicted-vs-observed pairs and reports relative-error
/// distributions per quantity.
#[derive(Clone, Debug, Default)]
pub struct CostAudit {
    series: BTreeMap<String, Series>,
}

/// Summary statistics of one audited quantity.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct AuditSummary {
    /// Number of recorded pairs.
    pub n: usize,
    /// Mean of predicted values.
    pub pred_mean: f64,
    /// Mean of observed values.
    pub obs_mean: f64,
    /// Mean absolute relative error.
    pub mean_abs_rel_err: f64,
    /// Median signed relative error.
    pub p50: f64,
    /// 90th percentile of the absolute relative error.
    pub p90_abs: f64,
    /// Largest absolute relative error seen.
    pub max_abs: f64,
}

impl CostAudit {
    /// An empty audit.
    pub fn new() -> Self {
        CostAudit::default()
    }

    /// Records one pair for `name`. The signed relative error is
    /// `(predicted − observed) / |observed|`, with a tiny floor on the
    /// denominator so observed-zero pairs stay finite.
    pub fn record(&mut self, name: &str, predicted: f64, observed: f64) {
        let s = self.series.entry(name.to_string()).or_default();
        s.pred_sum += predicted;
        s.obs_sum += observed;
        s.rel_errs
            .push((predicted - observed) / observed.abs().max(1e-12));
    }

    /// The signed relative errors recorded for `name`, in arrival order.
    pub fn relative_errors(&self, name: &str) -> &[f64] {
        self.series.get(name).map_or(&[], |s| &s.rel_errs)
    }

    /// Summary statistics for `name`; `None` if nothing was recorded.
    pub fn summary(&self, name: &str) -> Option<AuditSummary> {
        let s = self.series.get(name)?;
        let n = s.rel_errs.len();
        if n == 0 {
            return None;
        }
        let mut signed = s.rel_errs.clone();
        signed.sort_by(|a, b| a.partial_cmp(b).expect("finite rel errs"));
        let mut abs: Vec<f64> = s.rel_errs.iter().map(|e| e.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("finite rel errs"));
        let rank = |v: &[f64], q: f64| v[((q * n as f64).ceil() as usize).clamp(1, n) - 1];
        Some(AuditSummary {
            n,
            pred_mean: s.pred_sum / n as f64,
            obs_mean: s.obs_sum / n as f64,
            mean_abs_rel_err: abs.iter().sum::<f64>() / n as f64,
            p50: rank(&signed, 0.50),
            p90_abs: rank(&abs, 0.90),
            max_abs: *abs.last().expect("non-empty"),
        })
    }

    /// Audited quantity names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Human-readable multi-line report of every audited quantity.
    pub fn report(&self) -> String {
        let mut out = String::new();
        for name in self.series.keys() {
            if let Some(s) = self.summary(name) {
                out.push_str(&format!(
                    "{name}: n={} pred_mean={:.3} obs_mean={:.3} mean|rel_err|={:.3} p50={:+.3} p90|.|={:.3} max|.|={:.3}\n",
                    s.n, s.pred_mean, s.obs_mean, s.mean_abs_rel_err, s.p50, s.p90_abs, s.max_abs
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_error() {
        let mut a = CostAudit::new();
        for v in [1.0, 5.0, 9.0] {
            a.record("pages", v, v);
        }
        let s = a.summary("pages").expect("recorded");
        assert_eq!(s.n, 3);
        assert!(s.mean_abs_rel_err < 1e-12);
        assert!(s.max_abs < 1e-12);
    }

    #[test]
    fn signed_errors_keep_direction() {
        let mut a = CostAudit::new();
        a.record("io", 2.0, 1.0); // over-prediction: +1.0
        a.record("io", 0.5, 1.0); // under-prediction: −0.5
        let errs = a.relative_errors("io");
        assert!((errs[0] - 1.0).abs() < 1e-12);
        assert!((errs[1] + 0.5).abs() < 1e-12);
        let s = a.summary("io").expect("recorded");
        assert!((s.mean_abs_rel_err - 0.75).abs() < 1e-12);
        assert!((s.max_abs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn missing_series_is_empty() {
        let a = CostAudit::new();
        assert!(a.relative_errors("nope").is_empty());
        assert!(a.summary("nope").is_none());
    }
}
