//! The k-NN pipeline phases and their accumulated per-phase times.
//!
//! Lives here (rather than in the engine) so `iq-storage`'s `SimClock`
//! can attribute simulated time to phases without a dependency cycle:
//! `iq-obs` depends on nothing, and everything above depends on it.

/// One phase of the k-NN query pipeline. Every access method maps its
/// work onto these five phases so traces are comparable across engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Directory / inner-node scan: finding candidate pages.
    Directory = 0,
    /// Fetch planning: ordering candidates, extending block runs.
    Plan = 1,
    /// Level-2 quantized filter: scanning compressed pages.
    Filter = 2,
    /// Level-3 refinement: exact-representation lookups.
    Refine = 3,
    /// Top-k maintenance: candidate heap upkeep and result assembly.
    TopK = 4,
}

/// All phases, in pipeline order.
pub const PHASES: [Phase; 5] = [
    Phase::Directory,
    Phase::Plan,
    Phase::Filter,
    Phase::Refine,
    Phase::TopK,
];

impl Phase {
    /// Stable lower-case name, used in traces and metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Directory => "directory",
            Phase::Plan => "plan",
            Phase::Filter => "filter",
            Phase::Refine => "refine",
            Phase::TopK => "topk",
        }
    }

    /// Index into [`PhaseTimes`] arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Accumulated per-phase times for one or more queries: simulated
/// seconds (disk + CPU model) and wall-clock seconds, indexed by
/// [`Phase::index`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Simulated seconds attributed to each phase.
    pub sim: [f64; 5],
    /// Wall-clock seconds spent inside each phase.
    pub wall: [f64; 5],
}

impl PhaseTimes {
    /// Adds `sim`/`wall` seconds to `phase`.
    pub fn add(&mut self, phase: Phase, sim: f64, wall: f64) {
        self.sim[phase.index()] += sim;
        self.wall[phase.index()] += wall;
    }

    /// Accumulates another `PhaseTimes` into this one.
    pub fn merge(&mut self, other: &PhaseTimes) {
        for i in 0..5 {
            self.sim[i] += other.sim[i];
            self.wall[i] += other.wall[i];
        }
    }

    /// Sum of simulated seconds across phases.
    pub fn total_sim(&self) -> f64 {
        self.sim.iter().sum()
    }

    /// Sum of wall-clock seconds across phases.
    pub fn total_wall(&self) -> f64 {
        self.wall.iter().sum()
    }

    /// True when no time has been attributed to any phase.
    pub fn is_empty(&self) -> bool {
        self.total_sim() == 0.0 && self.total_wall() == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = PhaseTimes::default();
        a.add(Phase::Filter, 1.0, 0.5);
        a.add(Phase::Refine, 2.0, 0.25);
        let mut b = PhaseTimes::default();
        b.add(Phase::Filter, 3.0, 0.5);
        a.merge(&b);
        assert_eq!(a.sim[Phase::Filter.index()], 4.0);
        assert_eq!(a.sim[Phase::Refine.index()], 2.0);
        assert!((a.total_sim() - 6.0).abs() < 1e-12);
        assert!((a.total_wall() - 1.25).abs() < 1e-12);
        assert!(!a.is_empty());
        assert!(PhaseTimes::default().is_empty());
    }

    #[test]
    fn names_are_stable_and_distinct() {
        let names: Vec<_> = PHASES.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["directory", "plan", "filter", "refine", "topk"]);
    }
}
